"""Telemetry-hygiene rules (``TEL``).

The observability layer's value depends on discipline at the call sites:

* metric names must be drawn from :mod:`repro.obs.names` constants —
  a free-floating string literal drifts from the documented catalogue,
  breaks BENCH-record diffing, and defeats grep;
* spans must be used as context managers — a span entered without a
  guaranteed exit corrupts the tracer's stack for the rest of the run.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lintkit.core import FileContext, Finding, Rule, register

#: Instrument-returning / recording helpers whose first argument is a
#: metric name (MetricsRegistry methods and the repro.obs module helpers).
_METRIC_METHODS = {"counter", "gauge", "gauge_max", "histogram", "timer",
                   "observe", "timed"}


@register
class MetricNameLiteralRule(Rule):
    """``TEL001``: metric names come from ``repro.obs.names`` constants.

    Passing a string literal (or f-string) as the metric name at an
    instrumentation call site is flagged; import the constant — or the
    name-building helper for parameterised families — from
    :mod:`repro.obs.names` so the catalogue stays the single source of
    truth.
    """

    id = "TEL001"
    name = "metric-names-from-registry"
    description = ("string-literal metric names drift from the documented "
                   "catalogue; use repro.obs.names constants")
    default_allow = ("repro/obs/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _METRIC_METHODS
                    and node.args):
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and \
                    isinstance(first.value, str):
                yield ctx.finding(
                    self, node,
                    f".{node.func.attr}({first.value!r}) uses a literal "
                    "metric name; import the constant from "
                    "repro.obs.names")
            elif isinstance(first, ast.JoinedStr):
                yield ctx.finding(
                    self, node,
                    f".{node.func.attr}(f\"...\") builds a metric name "
                    "inline; use a name-building helper from "
                    "repro.obs.names")


@register
class SpanContextManagerRule(Rule):
    """``TEL002``: spans only via ``with``.

    ``tracer.span(...)`` returns a context manager; calling it anywhere
    except as (part of) a ``with`` item leaves a span that may never be
    exited, which corrupts the open-span stack and every enclosing
    duration.
    """

    id = "TEL002"
    name = "span-as-context-manager"
    description = ("a span used outside `with` can stay open forever and "
                   "corrupt the tracer stack")
    default_allow = ("repro/obs/",)

    @staticmethod
    def _span_calls(node: ast.AST) -> Iterator[ast.Call]:
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call) and \
                    isinstance(inner.func, ast.Attribute) and \
                    inner.func.attr == "span":
                yield inner

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        ok_calls: set[ast.Call] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    ok_calls.update(self._span_calls(item.context_expr))
        for call in self._span_calls(ctx.tree):
            if call not in ok_calls:
                yield ctx.finding(
                    self, call,
                    "span created outside a `with` statement; use "
                    "`with tracer.span(...)` so it always closes")


#: A dotted, lowercase, catalogue-style name: at least two segments.
_METRIC_LIKE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


def _metric_families() -> set[str]:
    """First segments of the catalogued names (plus parameterised ones)."""
    from repro.obs import names

    families = {n.split(".", 1)[0] for n in names.all_metric_names()}
    families.update({"perf", "obs"})
    return families


def _docstrings(tree: ast.Module) -> set[ast.Constant]:
    """The docstring Constant nodes of the module and its defs."""
    out: set[ast.Constant] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            body = getattr(node, "body", [])
            if body and isinstance(body[0], ast.Expr) and \
                    isinstance(body[0].value, ast.Constant) and \
                    isinstance(body[0].value.value, str):
                out.add(body[0].value)
    return out


@register
class DiagnosticsMetricNameRule(Rule):
    """``TEL003``: diagnostics/diff metric names come from the catalogue.

    The diagnostics layer (``repro.obs.diag`` / ``store`` / ``drift`` /
    ``doctor`` / ``htmlreport``) is exempt from TEL001 like the rest of
    ``repro.obs``, but it *consumes* metric names — to count fits, gate
    counter drift, or pick trouble counters — so a literal like
    ``"store.runs_archived"`` there silently detaches from
    ``repro.obs.names`` and breaks ``repro diff``'s gating.  Any string
    literal shaped like a catalogued metric name (dotted lowercase with
    a known first segment) is flagged; spell it as a ``names.*``
    constant instead.
    """

    id = "TEL003"
    name = "diagnostics-names-from-registry"
    description = ("literal metric names in the diagnostics/diff layer "
                   "detach from the repro.obs.names catalogue; use the "
                   "constants")
    only = ("repro/obs/diag", "repro/obs/store", "repro/obs/drift",
            "repro/obs/doctor", "repro/obs/htmlreport")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        families = _metric_families()
        skip = _docstrings(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and node not in skip):
                continue
            if not _METRIC_LIKE.match(node.value):
                continue
            if node.value.split(".", 1)[0] not in families:
                continue
            yield ctx.finding(
                self, node,
                f"literal metric name {node.value!r}; import the constant "
                "from repro.obs.names so diagnostics and drift gating "
                "stay on the catalogue")


@register
class LogEventNameLiteralRule(Rule):
    """``TEL004``: structured-log event names come from the catalogue.

    ``obs.log_event(...)`` and ``tel.log.emit(...)`` take a dotted event
    name as their first argument; a string literal (or f-string) there
    drifts from the ``EVENT_*`` catalogue in :mod:`repro.obs.names`
    exactly the way literal metric names do — the log stops being
    greppable against the documented schema.  Import the constant.
    """

    id = "TEL004"
    name = "log-events-from-registry"
    description = ("string-literal log event names drift from the EVENT_* "
                   "catalogue; use repro.obs.names constants")
    default_allow = ("repro/obs/",)

    @staticmethod
    def _is_log_call(node: ast.Call) -> str | None:
        """The display name of a log-emission call, or None."""
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "emit":
            # Only ``<...>.log.emit(...)`` — a bare ``.emit`` on some
            # unrelated object (e.g. an event bus) is not ours.
            target = func.value
            if isinstance(target, ast.Attribute) and target.attr == "log":
                return "log.emit"
            if isinstance(target, ast.Name) and target.id == "log":
                return "log.emit"
            return None
        if isinstance(func, ast.Attribute) and func.attr == "log_event":
            return "log_event"
        if isinstance(func, ast.Name) and func.id == "log_event":
            return "log_event"
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            where = self._is_log_call(node)
            if where is None:
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and \
                    isinstance(first.value, str):
                yield ctx.finding(
                    self, node,
                    f"{where}({first.value!r}) uses a literal event name; "
                    "import the EVENT_* constant from repro.obs.names")
            elif isinstance(first, ast.JoinedStr):
                yield ctx.finding(
                    self, node,
                    f"{where}(f\"...\") builds an event name inline; add "
                    "it to the EVENT_* catalogue in repro.obs.names")
