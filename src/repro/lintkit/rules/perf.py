"""Performance rules (``PERF``).

The sweep-batched solver kernel (:mod:`repro.runtime.flow`,
docs/PERFORMANCE.md) solves every flow cell of a sweep in one lock-step
batch; experiment drivers that instead call the scalar solver once per
grid cell inside a loop silently give that win back.  The ``PERF``
family fences the per-cell pattern out of the experiment drivers,
where sweeps are the norm and the batch API is one call away.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lintkit.core import FileContext, Finding, Rule, register

#: Callables that solve (or measure, which solves) a single flow cell.
_PER_CELL_CALLS = {"solve_flow", "measure", "measure_single"}

#: Callables that route a sweep through the batch kernel — a function
#: using any of these has consciously arranged its solves.
_BATCH_CALLS = {"prime", "prime_runs", "sweep", "omega_curve",
                "solve_flow_batch", "solve_flow_cells"}

_LOOPS = (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.DictComp,
          ast.GeneratorExp)


def _call_name(node: ast.Call) -> str | None:
    """The bare callee name: ``measure`` for both ``measure(...)`` and
    ``run_.measure(...)``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


@register
class PerCellSolveLoopRule(Rule):
    """``PERF001``: experiment drivers must batch their sweeps.

    A ``solve_flow``/``measure`` call inside a loop or comprehension
    solves one cell at a time; in ``repro/experiments/`` that loop is
    almost always a sweep the batch kernel could run in lock-step.
    Fix: measure through :meth:`MeasurementRun.sweep`, prime the cells
    first (:meth:`MeasurementRun.prime` / :func:`prime_runs`), or call
    :func:`solve_flow_cells` directly.  Loops that are intentionally
    scalar (priming already happened upstream, or the cells genuinely
    depend on each other) are grandfathered in the committed
    lint baseline.
    """

    id = "PERF001"
    name = "no-per-cell-solve-loops"
    description = ("per-cell solve_flow/measure loop in an experiment "
                   "driver; batch the sweep via MeasurementRun.sweep/"
                   "prime, prime_runs or solve_flow_cells")
    only = ("repro/experiments/",)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            calls = [n for n in ast.walk(func)
                     if isinstance(n, ast.Call)]
            if any(_call_name(c) in _BATCH_CALLS for c in calls):
                continue  # the function already routes through the batch
            seen: set[int] = set()  # nested loops share inner calls
            for loop in ast.walk(func):
                if not isinstance(loop, _LOOPS):
                    continue
                for node in ast.walk(loop):
                    if isinstance(node, ast.Call) and \
                            _call_name(node) in _PER_CELL_CALLS and \
                            id(node) not in seen:
                        seen.add(id(node))
                        yield ctx.finding(
                            self, node,
                            f"`{_call_name(node)}` called per cell "
                            "inside a loop; solve the sweep through "
                            "the batch kernel (MeasurementRun.sweep/"
                            "prime, prime_runs, solve_flow_cells)")
