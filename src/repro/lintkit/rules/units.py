"""Unit-safety rules (``UNT``).

The model juggles three incommensurable quantities — processor *cycles*
(PAPI_TOT_CYC), wall-clock *seconds* (the 5 µs sampler windows) and
off-chip *requests* — plus scaled time (ns/µs) and rates (Hz).  The
paper's counters only line up when every conversion passes through
:class:`repro.util.units.Frequency`; a raw ``cycles + seconds`` is a
silent corruption the type system cannot see.

Unit inference is purely lexical: an identifier carries a unit when its
name ends in a recognised suffix (``work_cycles``, ``window_s``,
``period_ns``, ``hz``).  Products and quotients are conversions and stay
legal; additive mixing and direct comparison of two *different* inferred
units is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.core import FileContext, Finding, Rule, register

#: Identifier suffix (or exact name) -> unit tag.
_UNIT_SUFFIXES: tuple[tuple[str, str], ...] = (
    ("_cycles", "cycles"),
    ("_seconds", "seconds"),
    ("_secs", "seconds"),
    ("_s", "seconds"),
    ("_ns", "nanoseconds"),
    ("_us", "microseconds"),
    ("_ms", "milliseconds"),
    ("_hz", "hertz"),
    ("_ghz", "hertz"),
    ("_mhz", "hertz"),
    ("_requests", "requests"),
)

_UNIT_EXACT = {
    "cycles": "cycles",
    "seconds": "seconds",
    "ns": "nanoseconds",
    "us": "microseconds",
    "ms": "milliseconds",
    "hz": "hertz",
    "requests": "requests",
}


def unit_of_name(name: str) -> str | None:
    """The unit tag lexically inferred from an identifier, if any."""
    lowered = name.lower()
    exact = _UNIT_EXACT.get(lowered)
    if exact is not None:
        return exact
    for suffix, unit in _UNIT_SUFFIXES:
        if lowered.endswith(suffix):
            return unit
    return None


def _operand_unit(node: ast.AST) -> tuple[str | None, str | None]:
    """``(unit, identifier)`` for a Name/Attribute operand, else Nones."""
    if isinstance(node, ast.Name):
        return unit_of_name(node.id), node.id
    if isinstance(node, ast.Attribute):
        return unit_of_name(node.attr), node.attr
    return None, None


@register
class MixedUnitArithmeticRule(Rule):
    """``UNT001``: additive mixing / comparison of different units.

    ``a + b``, ``a - b``, and ``a < b`` where the operand names infer to
    two different unit tags (cycles vs seconds vs requests vs Hz ...)
    must instead route one side through a ``Frequency``/`units` helper
    conversion.  Multiplicative forms (``cycles / seconds``) are the
    conversions themselves and stay legal.
    """

    id = "UNT001"
    name = "no-mixed-unit-arithmetic"
    description = ("adding or comparing cycles/seconds/requests without a "
                   "Frequency conversion corrupts counters silently")

    def _check_pair(self, ctx: FileContext, node: ast.AST,
                    left: ast.AST, right: ast.AST,
                    op_word: str) -> Iterator[Finding]:
        lunit, lname = _operand_unit(left)
        runit, rname = _operand_unit(right)
        if lunit and runit and lunit != runit:
            yield ctx.finding(
                self, node,
                f"{op_word} mixes units: `{lname}` is {lunit} but "
                f"`{rname}` is {runit}; convert via "
                "repro.util.units.Frequency first")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and \
                    isinstance(node.op, (ast.Add, ast.Sub)):
                word = "addition" if isinstance(node.op, ast.Add) \
                    else "subtraction"
                yield from self._check_pair(
                    ctx, node, node.left, node.right, word)
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for a, b in zip(operands, operands[1:]):
                    yield from self._check_pair(
                        ctx, node, a, b, "comparison")
            elif isinstance(node, ast.AugAssign) and \
                    isinstance(node.op, (ast.Add, ast.Sub)):
                yield from self._check_pair(
                    ctx, node, node.target, node.value,
                    "augmented assignment")
