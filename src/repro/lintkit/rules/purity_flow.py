"""Alias-aware cache purity (``PUR100``, tier 2).

``PUR001`` flags a memoized solver that mutates a *parameter by name* —
``profile.rates.append(...)``.  It is blind to the same mutation one
assignment later::

    def solve(machine, profile):
        flow_cache.get(key)
        rates = profile.rates      # alias of `profile`'s interior
        rates.append(extra)        # PUR001 silent, cache corrupted

``PUR100`` closes that hole with a forward alias analysis over the CFG:
every parameter starts aliasing itself, assignments propagate the
*may-alias* set (attribute/subscript reads alias their root object, so
``rates`` above aliases ``profile``; joins union the sets), and loop /
``with`` targets alias the iterated container.  A mutation through any
name whose alias set reaches a parameter is reported — unless the name
*is* that parameter, which stays ``PUR001``'s finding so each defect
surfaces exactly once.

Fresh values (literals, call results, comprehensions) reset the alias
set: ``rates = list(profile.rates)`` is a copy and mutating it is fine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.core import FileContext, Finding, Rule, register, \
    walk_functions
from repro.lintkit.dataflow.fixpoint import ForwardAnalysis
from repro.lintkit.dataflow.lattice import Env
from repro.lintkit.rules.cachepurity import _cache_calls, _MUTATORS

#: The empty alias set: a fresh, parameter-independent value.
_FRESH: frozenset[str] = frozenset()


def _op_exprs(op: ast.AST) -> list[ast.expr]:
    """The expressions belonging to this op *itself* — for compound
    statements that is the header only, never the body suites (those
    live in other CFG blocks and must not be scanned twice)."""
    if isinstance(op, (ast.If, ast.While)):
        return [op.test]
    if isinstance(op, (ast.For, ast.AsyncFor)):
        return [op.iter]
    if isinstance(op, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in op.items]
    if isinstance(op, ast.Match):
        return [op.subject]
    if isinstance(op, ast.match_case):
        return [op.guard] if op.guard is not None else []
    if isinstance(op, (ast.FunctionDef, ast.AsyncFunctionDef,
                       ast.ClassDef, ast.ExceptHandler)):
        return []
    if isinstance(op, ast.stmt):
        return [c for c in ast.iter_child_nodes(op)
                if isinstance(c, ast.expr)]
    return []


def _walk_exprs(exprs: list[ast.expr]):
    """Walk expression trees, pruning nested function/lambda scopes."""
    stack: list[ast.AST] = list(exprs)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            stack.append(child)


class AliasAnalysis(ForwardAnalysis):
    """May-alias sets from names to the parameters they can reach."""

    def __init__(self, params: set[str]) -> None:
        super().__init__()
        self.params = params
        #: (node, via-name, parameter) mutations observed at fixpoint.
        self.mutations: list[tuple[ast.AST, str, str]] = []
        self._seen: set[tuple[int, str]] = set()

    def initial_env(self, fn: ast.AST) -> Env:
        return {p: frozenset({p}) for p in self.params}

    # -- transfer -------------------------------------------------------------

    def transfer_op(self, env: Env, op: ast.AST) -> Env:
        env = dict(env)
        if isinstance(op, ast.Assign):
            value = self._aliases(env, op.value)
            for target in op.targets:
                self._bind(env, target, value)
            self._observe_mutation_targets(env, op)
        elif isinstance(op, ast.AnnAssign):
            value = self._aliases(env, op.value) if op.value is not None \
                else _FRESH
            self._bind(env, op.target, value)
            self._observe_mutation_targets(env, op)
        elif isinstance(op, ast.AugAssign):
            self._observe_mutation_targets(env, op)
        elif isinstance(op, (ast.For, ast.AsyncFor)):
            # Iterating a parameter's container yields interior values:
            # mutating an element mutates the parameter.
            self._bind(env, op.target, self._aliases(env, op.iter))
        elif isinstance(op, (ast.With, ast.AsyncWith)):
            for item in op.items:
                if item.optional_vars is not None:
                    self._bind(env, item.optional_vars,
                               self._aliases(env, item.context_expr))
        elif isinstance(op, ast.Delete):
            self._observe_mutation_targets(env, op)
            for target in op.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(op, ast.match_case):
            for node in ast.walk(op.pattern):
                if isinstance(node, ast.MatchAs) and node.name:
                    env[node.name] = _FRESH
        elif isinstance(op, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            env[op.name] = _FRESH
        # Mutator method calls can hide in any expression statement,
        # test, return value, ... — scan this op's own expressions.
        self._observe_mutator_calls(env, op)
        # Walrus bindings inside arbitrary expressions.
        for node in _walk_exprs(_op_exprs(op)):
            if isinstance(node, ast.NamedExpr):
                self._bind(env, node.target,
                           self._aliases(env, node.value))
        return env

    def _bind(self, env: Env, target: ast.AST,
              value: frozenset[str]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Unpacking distributes interior aliases to every element.
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self._bind(env, inner, value)

    def _aliases(self, env: Env, node: ast.AST) -> frozenset[str]:
        """The parameters ``node``'s value may share storage with."""
        if isinstance(node, ast.Name):
            value = env.get(node.id, _FRESH)
            return value if isinstance(value, frozenset) else _FRESH
        if isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
            return self._aliases(env, node.value)
        if isinstance(node, ast.IfExp):
            return self._aliases(env, node.body) | \
                self._aliases(env, node.orelse)
        if isinstance(node, ast.NamedExpr):
            return self._aliases(env, node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out: frozenset[str] = _FRESH
            for elt in node.elts:
                out |= self._aliases(env, elt)
            return out
        # Calls, literals, comprehensions, arithmetic: fresh values.
        return _FRESH

    # -- mutation observation -------------------------------------------------

    def _root_name(self, target: ast.AST) -> str | None:
        while isinstance(target, (ast.Attribute, ast.Subscript)):
            target = target.value
        return target.id if isinstance(target, ast.Name) else None

    def _record(self, env: Env, node: ast.AST, name: str,
                how: str) -> None:
        if not self.observing or name in self.params:
            return  # direct parameter mutation is PUR001's finding
        aliased = env.get(name)
        if not isinstance(aliased, frozenset):
            return
        for param in sorted(aliased & self.params):
            key = (id(node), f"{name}->{param}")
            if key in self._seen:
                continue
            self._seen.add(key)
            self.mutations.append((node, f"{how} `{name}`", param))

    def _observe_mutation_targets(self, env: Env, op: ast.AST) -> None:
        targets: list[ast.AST] = []
        if isinstance(op, ast.Assign):
            targets = list(op.targets)
        elif isinstance(op, (ast.AugAssign, ast.AnnAssign)):
            targets = [op.target]
        elif isinstance(op, ast.Delete):
            targets = list(op.targets)
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                name = self._root_name(target)
                if name is not None:
                    how = "deletes from" if isinstance(op, ast.Delete) \
                        else "assigns into"
                    self._record(env, op, name, how)

    def _observe_mutator_calls(self, env: Env, op: ast.AST) -> None:
        for node in _walk_exprs(_op_exprs(op)):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _MUTATORS:
                name = self._root_name(node.func.value)
                if name is not None:
                    self._record(env, node, name,
                                 f"calls .{node.func.attr}() via")


@register
class AliasedMemoizedMutationRule(Rule):
    """``PUR100``: aliased argument mutation on the memoized path."""

    id = "PUR100"
    name = "aliased-memoized-mutation"
    description = ("memoized solvers must not mutate values aliasing "
                   "their arguments (dataflow upgrade of PUR001)")
    tier = 2

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in walk_functions(ctx.tree):
            if not _cache_calls(fn, ("get", "put")):
                continue
            params = {a.arg for a in (*fn.args.posonlyargs, *fn.args.args,
                                      *fn.args.kwonlyargs)
                      if a.arg not in ("self", "cls")}
            if not params:
                continue
            analysis = AliasAnalysis(params)
            analysis.analyze(fn, ctx.cfg_of(fn))
            for node, how, param in analysis.mutations:
                yield ctx.finding(
                    self, node,
                    f"memoized function `{fn.name}` {how}, which may "
                    f"alias its argument `{param}`; memoized solvers "
                    "must be pure in their inputs")
