"""Domain rule families; importing this package registers every rule.

Families (see docs/LINTING.md for the full catalogue):

* ``DET``  — determinism: no unseeded randomness, no wall-clock reads.
* ``UNT``  — unit safety: no cycles/seconds/requests mixing.
* ``PERF`` — batch hygiene: experiment sweeps go through the batch
  solver kernel, not per-cell loops.
* ``PUR``  — cache purity: memoized solvers stay side-effect free.
* ``SIM``  — desim scheduling invariants.
* ``TEL``  — telemetry hygiene: registry-constant metric names, spans
  only as context managers.
"""

from repro.lintkit.rules import (  # noqa: F401
    cachepurity,
    desim,
    determinism,
    perf,
    telemetry,
    units,
)
