"""Domain rule families; importing this package registers every rule.

Families (see docs/LINTING.md for the full catalogue):

* ``DET``  — determinism: no unseeded randomness, no wall-clock reads.
* ``UNT``  — unit safety: no cycles/seconds/requests mixing.  ``UNT001``
  is lexical; ``UNT100``–``UNT102`` infer dimensions by dataflow.
* ``PERF`` — batch hygiene: experiment sweeps go through the batch
  solver kernel, not per-cell loops.
* ``PUR``  — cache purity: memoized solvers stay side-effect free.
  ``PUR100`` tracks aliases the syntactic rules cannot see.
* ``CONC`` — concurrency safety: shared-state mutation under threads,
  process-pool capture hazards, fork-inherited RNG/telemetry state.
* ``SIM``  — desim scheduling invariants.
* ``TEL``  — telemetry hygiene: registry-constant metric names, spans
  only as context managers.
"""

from repro.lintkit.rules import (  # noqa: F401
    cachepurity,
    concurrency,
    desim,
    determinism,
    perf,
    purity_flow,
    telemetry,
    units,
    unitflow,
)
