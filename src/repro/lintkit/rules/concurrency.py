"""Concurrency-safety rules (``CONC``, tier 2).

The ROADMAP's service arc (``repro serve``, sharded sweeps, the metrics
endpoint) puts shared module state under threads and process pools.
These rules use the cross-module symbol index to see the hazards a
single file cannot show:

* ``CONC001`` — a function *reachable from a thread entry point*
  (a ``threading.Thread(target=...)`` anywhere in the project, or a
  ``do_*`` method of a ``BaseHTTPRequestHandler`` subclass such as the
  ``MetricsServer`` handler) mutates a module global or a module-level
  registry singleton without holding a lock.  Reachability follows the
  summarised call graph across modules, so the mutation and the thread
  construction can live three files apart.
* ``CONC002`` — a process-pool submission (``pool.submit`` with
  ``ProcessPoolExecutor`` imported, or ``run_isolated``) captures
  something that cannot cross the process boundary: a lambda or a
  function nested in the submitting scope (unpicklable), or a
  module-level mutable registry passed as an argument — the child
  mutates a *copy*, and the parent silently never sees the writes.
* ``CONC003`` — a worker entry function (submitted to a process pool
  anywhere in the project) consumes fork-inherited process-wide state:
  the stdlib/NumPy *global* RNG, or the active telemetry session,
  without re-initialising it (``seed``/``default_rng`` respectively
  ``enable(fresh=True)``) in the worker.  Forked children inherit the
  parent's RNG position and telemetry buffers; every worker then
  replays identical "random" draws and double-counts metrics.

``CONC`` findings are never grandfathered by the baseline (see
``lintkit.baseline``): a new shared-state hazard must be fixed or
carry an inline justification, not accumulate.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.core import FileContext, Finding, Rule, dotted_name, \
    register
from repro.lintkit.dataflow.symbols import SymbolIndex, module_name_for

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "sort", "reverse", "update", "setdefault", "add", "discard",
    "appendleft", "extendleft", "inc", "observe",
}

#: Call-name tails that re-seed / re-initialise inherited RNG state
#: (constructing a local ``random.Random(seed)`` counts).
_RNG_REINIT = {"seed", "default_rng", "derive", "spawn", "Random"}

#: Dotted prefixes reading the process-global RNG streams.
_GLOBAL_RNG_PREFIXES = ("random.", "np.random.", "numpy.random.")


def _top_level_functions(tree: ast.Module) -> Iterator[tuple[str, ast.AST]]:
    """``(name, fn)`` for module functions and ``Class.method`` pairs."""
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt.name, stmt
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{stmt.name}.{sub.name}", sub


def _project_index(ctx: FileContext) -> SymbolIndex:
    project = getattr(ctx, "project", None)
    if project is not None:
        return project.index
    index = SymbolIndex()
    index.add_tree(ctx.relpath, ctx.tree)
    return index


def _is_lockish(node: ast.AST) -> bool:
    """A ``with`` context that looks like a lock acquisition."""
    if isinstance(node, ast.Call):
        node = node.func
    name = dotted_name(node)
    if name is None:
        return False
    tail = name.rsplit(".", 1)[-1].lower()
    return "lock" in tail or "mutex" in tail


def _collect_bound_names(target: ast.AST, out: set[str]) -> None:
    """Names *bound* by an assignment target.  ``REGISTRY[k] = v`` and
    ``obj.attr = v`` bind nothing — they mutate an existing object — so
    Subscript/Attribute targets are deliberately not descended into."""
    if isinstance(target, ast.Name):
        out.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _collect_bound_names(elt, out)
    elif isinstance(target, ast.Starred):
        _collect_bound_names(target.value, out)


def _local_bindings(fn: ast.AST) -> set[str]:
    """Names assigned anywhere in ``fn`` (locals unless declared global)."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                _collect_bound_names(target, out)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node.target, ast.Name):
                out.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            _collect_bound_names(node.target, out)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    _collect_bound_names(item.optional_vars, out)
        elif isinstance(node, ast.NamedExpr):
            _collect_bound_names(node.target, out)
    return out


def _declared_globals(fn: ast.AST) -> set[str]:
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            out.update(node.names)
    return out


def _params(fn: ast.AST) -> set[str]:
    args = fn.args
    names = {a.arg for a in (*args.posonlyargs, *args.args,
                             *args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


@register
class ThreadSharedMutationRule(Rule):
    """``CONC001``: unsynchronised global mutation on a thread path."""

    id = "CONC001"
    name = "thread-shared-mutation"
    description = ("a function reachable from a Thread target or HTTP "
                   "handler mutates module state without a lock")
    tier = 2

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        index = _project_index(ctx)
        reachable = index.thread_reachable()
        if not reachable:
            return
        module = module_name_for(ctx.relpath)
        info = index.modules.get(module)
        if info is None:
            return
        mutable_globals = set(info.globals_mutable)
        for name, fn in _top_level_functions(ctx.tree):
            if f"{module}.{name}" not in reachable:
                continue
            yield from self._check_function(ctx, name, fn, mutable_globals)

    def _check_function(self, ctx: FileContext, fname: str, fn: ast.AST,
                        mutable_globals: set[str]) -> Iterator[Finding]:
        declared = _declared_globals(fn)
        shadowed = (_local_bindings(fn) | _params(fn)) - declared
        shared = (mutable_globals - shadowed) | declared

        def visit(node: ast.AST, locked: bool) -> Iterator[Finding]:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner_locked = locked or any(
                    _is_lockish(item.context_expr) for item in node.items)
                for stmt in node.body:
                    yield from visit(stmt, inner_locked)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                return  # nested scopes are analysed via their own entry
            if not locked:
                hit = self._mutation(node, shared, declared)
                if hit is not None:
                    target, how = hit
                    yield ctx.finding(
                        self, node,
                        f"`{fname}` {how} module state `{target}` on a "
                        "thread-reachable path without holding a lock; "
                        "guard it or make it thread-local")
            for child in ast.iter_child_nodes(node):
                yield from visit(child, locked)

        for stmt in fn.body:
            yield from visit(stmt, False)

    @staticmethod
    def _mutation(node: ast.AST, shared: set[str],
                  declared: set[str]) -> tuple[str, str] | None:
        def root(target: ast.AST) -> str | None:
            while isinstance(target, (ast.Attribute, ast.Subscript)):
                target = target.value
            return target.id if isinstance(target, ast.Name) else None

        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    return target.id, "rebinds"
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    name = root(target)
                    if name in shared:
                        return name, "assigns into"
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name) and \
                    node.target.id in declared:
                return node.target.id, "rebinds"
            if isinstance(node.target, (ast.Attribute, ast.Subscript)):
                name = root(node.target)
                if name in shared:
                    return name, "assigns into"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                name = root(target)
                if name in shared:
                    return name, "deletes from"
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATORS:
            name = root(node.func.value)
            if name in shared:
                return name, f"calls .{node.func.attr}() on"
        return None


@register
class ProcessPoolCaptureRule(Rule):
    """``CONC002``: unpicklable / mutable-shared process-pool captures."""

    id = "CONC002"
    name = "process-pool-capture"
    description = ("a process-pool submission captures a lambda, nested "
                   "function, or shared mutable registry")
    tier = 2

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        index = _project_index(ctx)
        module = module_name_for(ctx.relpath)
        info = index.modules.get(module)
        mutable_globals = set(info.globals_mutable) if info else set()
        has_pool = bool(info) and any(
            q.rsplit(".", 1)[-1] == "ProcessPoolExecutor"
            for q in info.imports.values())
        for fname, fn in _top_level_functions(ctx.tree):
            nested = {n.name for n in ast.walk(fn)
                      if isinstance(n, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))
                      and n is not fn}
            shadowed = _local_bindings(fn) | _params(fn)
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                tail = name.rsplit(".", 1)[-1]
                if tail == "run_isolated" or (has_pool and tail == "submit"):
                    yield from self._check_submission(
                        ctx, node, nested, mutable_globals - shadowed)

    def _check_submission(self, ctx: FileContext, call: ast.Call,
                          nested: set[str],
                          shared: set[str]) -> Iterator[Finding]:
        target = call.args[0]
        if isinstance(target, ast.Lambda):
            yield ctx.finding(
                self, target,
                "a lambda cannot cross the process boundary (pickle "
                "fails at submit time); move the worker to module level")
        elif isinstance(target, ast.Name) and target.id in nested:
            yield ctx.finding(
                self, target,
                f"nested function `{target.id}` cannot cross the process "
                "boundary (closures do not pickle); move it to module "
                "level")
        for arg in call.args[1:]:
            for node in ast.walk(arg):
                if isinstance(node, ast.Name) and node.id in shared:
                    yield ctx.finding(
                        self, node,
                        f"mutable module registry `{node.id}` is passed "
                        "into a process pool: the worker mutates a pickled "
                        "copy and the parent never sees the writes; pass "
                        "immutable data and return results instead")


@register
class ForkInheritedStateRule(Rule):
    """``CONC003``: worker entries consuming fork-inherited state."""

    id = "CONC003"
    name = "fork-inherited-state"
    description = ("a process-pool worker reads the global RNG or the "
                   "telemetry session inherited across fork without "
                   "re-initialising it")
    tier = 2

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        index = _project_index(ctx)
        entries = index.process_entry_functions()
        if not entries:
            return
        module = module_name_for(ctx.relpath)
        for name, fn in _top_level_functions(ctx.tree):
            if f"{module}.{name}" not in entries:
                continue
            yield from self._check_worker(ctx, name, fn)

    def _check_worker(self, ctx: FileContext, fname: str,
                      fn: ast.AST) -> Iterator[Finding]:
        reseeds = False
        fresh_session = False
        rng_reads: list[tuple[ast.AST, str]] = []
        session_reads: list[tuple[ast.AST, str]] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                tail = name.rsplit(".", 1)[-1]
                if tail in _RNG_REINIT:
                    reseeds = True
                if tail == "enable" and any(
                        kw.arg == "fresh" and
                        isinstance(kw.value, ast.Constant) and
                        kw.value.value is True
                        for kw in node.keywords):
                    fresh_session = True
                if tail == "session" or name.endswith("obs.session"):
                    session_reads.append((node, name))
            elif isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if dotted is None:
                    continue
                if dotted.startswith(_GLOBAL_RNG_PREFIXES):
                    rng_reads.append((node, dotted))
                elif dotted.endswith("._active"):
                    session_reads.append((node, dotted))
        if not reseeds:
            for node, name in rng_reads:
                yield ctx.finding(
                    self, node,
                    f"worker `{fname}` draws from the process-global RNG "
                    f"(`{name}`) inherited across fork: every worker "
                    "replays the parent's stream; seed a local generator "
                    "per task instead")
        if not fresh_session:
            for node, name in session_reads:
                yield ctx.finding(
                    self, node,
                    f"worker `{fname}` reads the fork-inherited telemetry "
                    f"session (`{name}`); call obs.enable(fresh=True) in "
                    "the worker so counters are not double-recorded")
