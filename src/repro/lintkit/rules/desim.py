"""Desim scheduling-invariant rules (``SIM``).

The discrete-event engine's determinism guarantee rests on invariants
enforced partly at runtime (non-negative delays raise) and partly by
convention only.  These rules move the conventions into CI:

* delays are non-negative — a literal negative delay is always a bug;
* an event is immutable once enqueued — the heap ordering and any
  already-registered waiter read ``time``/``value``/``seq`` at trigger
  time, so mutating them after ``push``/``schedule`` reorders history;
* monitors must not hold strong references to the engine — monitors
  outlive runs (they feed the burst sampler after ``run()`` returns), so
  a strong ``monitor -> simulator`` edge keeps the whole event graph
  alive and couples measurement to scheduling.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.core import FileContext, Finding, Rule, register

#: Attributes that are frozen once an event is on the queue.
_FROZEN_EVENT_ATTRS = {"time", "value", "seq"}

#: Parameter names that (by convention) carry the engine.
_ENGINE_PARAMS = {"sim", "engine", "simulator", "env"}


def _is_negative_number(node: ast.AST) -> bool:
    return (isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, (int, float)))


@register
class NegativeDelayRule(Rule):
    """``SIM001``: no literal negative delays in scheduling calls."""

    id = "SIM001"
    name = "no-negative-delay"
    description = ("scheduling with a negative delay would fire an event "
                   "in the simulated past")

    _SCHEDULERS = {"schedule": 1, "timeout": 0, "Timeout": 0}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            name = fn.attr if isinstance(fn, ast.Attribute) else (
                fn.id if isinstance(fn, ast.Name) else None)
            if name not in self._SCHEDULERS:
                continue
            delay_pos = self._SCHEDULERS[name]
            delay = None
            if len(node.args) > delay_pos:
                delay = node.args[delay_pos]
            else:
                for kw in node.keywords:
                    if kw.arg == "delay":
                        delay = kw.value
            if delay is not None and _is_negative_number(delay):
                yield ctx.finding(
                    self, node,
                    f"`{name}` called with a negative delay; events cannot "
                    "be scheduled in the simulated past")


@register
class EventMutationAfterEnqueueRule(Rule):
    """``SIM002``: events are frozen once pushed onto the queue.

    Within one function, an assignment to ``event.time``, ``event.value``
    or ``event.seq`` *after* that event was passed to ``.push(...)`` or
    ``.schedule(...)`` is flagged: the heap key and any registered waiter
    already captured the enqueued state.  Set the payload first, then
    enqueue.
    """

    id = "SIM002"
    name = "no-event-mutation-after-enqueue"
    description = ("mutating an event after it is enqueued desynchronises "
                   "the heap ordering from the event state")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in [n for n in ast.walk(ctx.tree)
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]:
            enqueued: dict[str, int] = {}  # name -> line of enqueue
            for node in ast.walk(fn):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr in ("push", "schedule") and \
                        node.args and isinstance(node.args[0], ast.Name):
                    name = node.args[0].id
                    line = node.lineno
                    if name not in enqueued or line < enqueued[name]:
                        enqueued[name] = line
            if not enqueued:
                continue
            for node in ast.walk(fn):
                if not isinstance(node, (ast.Assign, ast.AugAssign)):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and \
                            target.attr in _FROZEN_EVENT_ATTRS and \
                            isinstance(target.value, ast.Name):
                        name = target.value.id
                        if name in enqueued and \
                                node.lineno > enqueued[name]:
                            yield ctx.finding(
                                self, node,
                                f"`{name}.{target.attr}` assigned after "
                                f"`{name}` was enqueued (line "
                                f"{enqueued[name]}); set event state "
                                "before push/schedule")


@register
class MonitorEngineReferenceRule(Rule):
    """``SIM003``: monitors must not hold strong engine references.

    In a class whose name ends in ``Monitor``, storing a constructor
    parameter named ``sim``/``engine``/``simulator``/``env`` on ``self``
    creates a strong monitor→engine edge; use a ``weakref`` (or pass the
    values the monitor needs instead of the engine).
    """

    id = "SIM003"
    name = "no-monitor-engine-reference"
    description = ("a strong monitor->engine reference keeps the whole "
                   "event graph alive past the run")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.ClassDef)
                    and node.name.endswith("Monitor")):
                continue
            for stmt in node.body:
                if not (isinstance(stmt, ast.FunctionDef)
                        and stmt.name == "__init__"):
                    continue
                engine_params = {
                    a.arg for a in (*stmt.args.posonlyargs, *stmt.args.args,
                                    *stmt.args.kwonlyargs)
                    if a.arg in _ENGINE_PARAMS}
                if not engine_params:
                    continue
                for inner in ast.walk(stmt):
                    if isinstance(inner, ast.Assign) and \
                            isinstance(inner.value, ast.Name) and \
                            inner.value.id in engine_params:
                        for target in inner.targets:
                            if isinstance(target, ast.Attribute) and \
                                    isinstance(target.value, ast.Name) and \
                                    target.value.id == "self":
                                yield ctx.finding(
                                    self, inner,
                                    f"monitor `{node.name}` stores a strong "
                                    f"reference to `{inner.value.id}`; hold "
                                    "a weakref.ref/proxy instead")
