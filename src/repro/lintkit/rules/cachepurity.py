"""Cache-purity rules (``PUR``).

The :mod:`repro.perf` memoization layer assumes two contracts that
nothing at runtime verifies:

* a memoized solver is a *pure* function of its arguments — if it
  mutates an argument, the first (cached) and second (memoized) call
  observe different worlds and bit-identity breaks;
* everything reachable from a cache key canonicalises — the fingerprint
  walker handles primitives, dataclasses and ``__dict__`` objects, but a
  ``__slots__`` value object is invisible to it unless it implements
  ``__cache_tokens__``.

These rules enforce both statically, at the definition site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.core import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
    parameter_names,
    register,
    walk_functions,
)

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "sort", "reverse", "update", "setdefault", "add", "discard",
    "appendleft", "extendleft",
}

#: Constructors whose results are interior-mutable.
_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray", "deque",
                      "defaultdict", "OrderedDict", "Counter"}


def _is_cache_receiver(node: ast.AST) -> bool:
    """True when ``node`` names a perf memo cache (``*_cache`` / ``cache``)."""
    dotted = dotted_name(node)
    if dotted is None:
        return False
    tail = dotted.rsplit(".", 1)[-1].lower()
    return tail == "cache" or tail.endswith("_cache")


def _cache_calls(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                 methods: tuple[str, ...]) -> list[ast.Call]:
    """Calls to ``<cache>.{get,put}`` (or given methods) inside ``fn``."""
    out = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in methods and \
                _is_cache_receiver(node.func.value):
            out.append(node)
    return out


def _param_mutations(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                     params: set[str]) -> Iterator[tuple[ast.AST, str, str]]:
    """Yield ``(node, param, how)`` for each in-place parameter mutation."""

    def _root_param(node: ast.AST) -> str | None:
        # a.b[0].c = ... mutates whatever `a` refers to.
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name) and node.id in params:
            return node.id
        return None

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    param = _root_param(target)
                    if param:
                        yield node, param, "assigns into"
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, (ast.Attribute, ast.Subscript)):
                param = _root_param(node.target)
                if param:
                    yield node, param, "assigns into"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    param = _root_param(target)
                    if param:
                        yield node, param, "deletes from"
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATORS:
            param = _root_param(node.func.value)
            if param:
                yield node, param, f"calls .{node.func.attr}() on"


@register
class MemoizedMutationRule(Rule):
    """``PUR001``: memoized solvers must not mutate their arguments.

    A function that consults a perf memo cache (``*_cache.get``/``.put``)
    is on the memoized path; mutating an argument there means cache hits
    and misses leave callers in different states, breaking the
    bit-identity contract between cached and fresh solves.
    """

    id = "PUR001"
    name = "memoized-argument-mutation"
    description = ("functions on the repro.perf memoized path must not "
                   "mutate their arguments")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in walk_functions(ctx.tree):
            if not _cache_calls(fn, ("get", "put")):
                continue
            params = parameter_names(fn)
            if not params:
                continue
            for node, param, how in _param_mutations(fn, params):
                yield ctx.finding(
                    self, node,
                    f"memoized function `{fn.name}` {how} its argument "
                    f"`{param}`; memoized solvers must be pure in their "
                    "inputs")


@register
class MutableCacheValueRule(Rule):
    """``PUR002``: values stored in a perf cache must be immutable.

    ``cache.put(key, value)`` hands ``value`` to every future hit; a
    freshly-built ``list``/``dict``/``set`` stored directly lets one
    caller's in-place edit corrupt every later hit.  Store tuples/frozen
    dataclasses, or copy on the way out (as ``solve_flow`` does for its
    one interior dict).
    """

    id = "PUR002"
    name = "no-mutable-cache-values"
    description = ("storing a mutable container in a perf cache lets one "
                   "caller corrupt every later hit")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "put"
                    and _is_cache_receiver(node.func.value)
                    and len(node.args) >= 2):
                continue
            value = node.args[1]
            bad: str | None = None
            if isinstance(value, (ast.List, ast.Dict, ast.Set,
                                  ast.ListComp, ast.DictComp, ast.SetComp)):
                bad = "a mutable container literal"
            elif isinstance(value, ast.Call) and \
                    isinstance(value.func, ast.Name) and \
                    value.func.id in _MUTABLE_FACTORIES:
                bad = f"a `{value.func.id}(...)` result"
            if bad:
                yield ctx.finding(
                    self, node,
                    f"cache value is {bad}; cached values must be "
                    "immutable (tuple, frozen dataclass, or copy on read)")


@register
class CacheTokensRule(Rule):
    """``PUR003``: ``__slots__`` value objects in cache-key domains need
    ``__cache_tokens__``.

    The fingerprint canonicaliser reads ``__dict__`` for plain objects;
    a ``__slots__`` class (that is not a dataclass) reaching a cache key
    raises at solve time.  Classes in the machine/runtime model layers —
    the object graphs the flow key walks — must therefore either stay
    dataclasses, keep a ``__dict__``, or expose ``__cache_tokens__``.
    """

    id = "PUR003"
    name = "cache-key-tokens"
    description = ("__slots__ classes in cache-key domains are invisible "
                   "to the fingerprint walker without __cache_tokens__")
    only = ("repro/machine/", "repro/runtime/")

    @staticmethod
    def _is_dataclass(cls: ast.ClassDef) -> bool:
        for deco in cls.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = dotted_name(target)
            if name and name.rsplit(".", 1)[-1] == "dataclass":
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            has_slots = False
            has_tokens = False
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and \
                                target.id == "__slots__":
                            has_slots = True
                elif isinstance(stmt, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)) and \
                        stmt.name == "__cache_tokens__":
                    has_tokens = True
            if has_slots and not has_tokens and not self._is_dataclass(node):
                yield ctx.finding(
                    self, node,
                    f"class `{node.name}` defines __slots__ in a cache-key "
                    "domain but no __cache_tokens__; fingerprinting it "
                    "will fail at solve time")
