"""Determinism rules (``DET``).

Experiment outputs must be bit-reproducible: the perf-cache layer
asserts exact float equality between cached and fresh solves, and the
committed BENCH baselines diff counter-for-counter across machines.  Any
unseeded randomness or wall-clock read in model code silently breaks
both, so these rules fence all entropy behind ``util/rng.py`` and all
wall-clock access behind the telemetry layer.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lintkit.core import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
    register,
)

#: ``numpy.random`` attributes that are deterministic-safe to reference.
_NP_RANDOM_OK = {"Generator", "BitGenerator", "SeedSequence", "default_rng",
                 "PCG64", "Philox", "SFC64", "MT19937"}

#: Wall-clock callables, by dotted name.
_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: Bare names that are wall-clock when imported from these modules.
_WALL_CLOCK_FROM = {
    "time": {"time", "time_ns", "perf_counter", "perf_counter_ns",
             "monotonic", "monotonic_ns", "process_time",
             "process_time_ns"},
    "datetime": set(),  # datetime.now needs the class; handled above
}


def _np_random_value(node: ast.AST) -> bool:
    """True when ``node`` is the ``np.random``/``numpy.random`` attribute."""
    return (isinstance(node, ast.Attribute) and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy"))


@register
class StdlibRandomRule(Rule):
    """``DET001``: the stdlib ``random`` module is banned.

    Its global Mersenne-Twister state makes results depend on import and
    call order across the whole process; all randomness flows through
    :mod:`repro.util.rng` seeded generators instead.
    """

    id = "DET001"
    name = "no-stdlib-random"
    description = ("stdlib `random` uses hidden global state; use seeded "
                   "generators from repro.util.rng")
    default_allow = ("repro/util/rng.py",)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or \
                            alias.name.startswith("random."):
                        yield ctx.finding(
                            self, node,
                            "import of stdlib `random`; route randomness "
                            "through repro.util.rng")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield ctx.finding(
                        self, node,
                        "import from stdlib `random`; route randomness "
                        "through repro.util.rng")


@register
class NumpyGlobalRandomRule(Rule):
    """``DET002``: no global/unseeded numpy randomness.

    ``np.random.rand`` and friends mutate the legacy global state;
    ``np.random.default_rng()`` *without* a seed pulls OS entropy.  Both
    make reruns diverge.  Components must accept a seed-or-Generator and
    normalise it with :func:`repro.util.rng.resolve_rng`.
    """

    id = "DET002"
    name = "no-global-numpy-random"
    description = ("legacy np.random.* global state and unseeded "
                   "default_rng() break run-to-run reproducibility")
    default_allow = ("repro/util/rng.py",)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                fn = node.func
                if isinstance(fn, ast.Attribute) and \
                        _np_random_value(fn.value):
                    if fn.attr not in _NP_RANDOM_OK:
                        yield ctx.finding(
                            self, node,
                            f"np.random.{fn.attr}() uses the legacy global "
                            "RNG state; use a Generator from "
                            "repro.util.rng.resolve_rng")
                    elif fn.attr == "default_rng" and not node.args \
                            and not node.keywords:
                        yield ctx.finding(
                            self, node,
                            "np.random.default_rng() without a seed pulls "
                            "OS entropy; pass a seed or use "
                            "repro.util.rng.resolve_rng")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _NP_RANDOM_OK:
                            yield ctx.finding(
                                self, node,
                                f"importing numpy.random.{alias.name} "
                                "(legacy global RNG); use seeded "
                                "Generators from repro.util.rng")


@register
class WallClockRule(Rule):
    """``DET003``: no wall-clock reads in model code.

    Model and solver results must be pure functions of their inputs.
    Wall-clock time belongs to the observability layer (``repro/obs/``)
    and the experiment runner's timing footer; anywhere else it either
    leaks into results or tempts time-dependent logic.
    """

    id = "DET003"
    name = "no-wall-clock"
    description = ("wall-clock reads outside the telemetry layer make "
                   "results time-dependent")
    # repro/resilience/ deals in wall-clock *budgets* by design (solver
    # time limits, worker timeouts, injected hangs); budgets bound when
    # a computation may run, never what it computes.  repro/serve/ reads
    # clocks only for uptime, idle timeouts and request-latency
    # telemetry — the predictions it returns come from the pure kernel.
    default_allow = ("repro/obs/", "repro/experiments/runner.py",
                     "repro/resilience/", "repro/serve/")

    def _from_imports(self, ctx: FileContext) -> set[str]:
        """Local names bound to wall-clock callables via ``from`` imports."""
        names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and \
                    node.module in _WALL_CLOCK_FROM:
                banned = _WALL_CLOCK_FROM[node.module]
                for alias in node.names:
                    if alias.name in banned:
                        names.add(alias.asname or alias.name)
        return names

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        local_clocks = self._from_imports(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted in _WALL_CLOCK:
                yield ctx.finding(
                    self, node,
                    f"wall-clock call {dotted}() outside the telemetry "
                    "layer; results must not depend on real time")
            elif isinstance(node.func, ast.Name) and \
                    node.func.id in local_clocks:
                yield ctx.finding(
                    self, node,
                    f"wall-clock call {node.func.id}() (imported from "
                    "time) outside the telemetry layer")
