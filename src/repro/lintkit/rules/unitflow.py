"""Dataflow unit-dimension inference (``UNT1xx``, tier 2).

Where ``UNT001`` sees one expression at a time and only the *names* in
it, these rules run a forward abstract interpretation per function: each
binding carries a physical :class:`~repro.lintkit.dataflow.unitsig.Dim`
(cycles, seconds, requests, requests/cycle, 1/second, dimensionless),
seeded from parameter/binding names, known attribute fields and the
unit-signature registry, and propagated through assignments, arithmetic
(products/quotients combine exponents; sums require agreement) and
calls.  Three rules read the converged facts:

* ``UNT100`` — additive mixing / comparison of two *inferred*
  dimensions that disagree, e.g. adding a value that flowed out of
  ``cycles_to_seconds`` to a cycle count, even when neither operand
  name says so.  Expressions the lexical ``UNT001`` already flags are
  skipped, so each defect surfaces exactly once.
* ``UNT101`` — argument dimension contradicts a registered unit
  signature: passing a latency (seconds) where ``seconds_to_cycles``
  declares cycles, a rate where a count is declared, a swapped
  ``(freq, cycles)`` pair.
* ``UNT102`` — dimension-losing bind: assigning a value whose inferred
  dimension is known to a name whose suffix promises a *different*
  dimension (``total_cycles = cycles_to_seconds(...)``) silently
  relabels the quantity for every downstream reader.

All three stay silent on unknown (⊤) dimensions: they only speak when
both sides of a disagreement are established facts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lintkit.core import FileContext, Finding, Rule, dotted_name, \
    register, walk_functions
from repro.lintkit.dataflow.fixpoint import ForwardAnalysis
from repro.lintkit.dataflow.lattice import TOP, Env
from repro.lintkit.dataflow.unitsig import (
    ATTR_DIMS,
    Dim,
    UnitRegistry,
    lexical_dim,
)
from repro.lintkit.rules.units import unit_of_name

#: Builtins that pass their argument's dimension through unchanged.
_DIM_PRESERVING = {"float", "int", "abs", "round", "min", "max"}


@dataclass(frozen=True)
class UnitReport:
    """One defect observed at fixpoint, tagged with its rule kind."""

    kind: str  # "mix" | "sig" | "bind"
    node: ast.AST
    message: str


class UnitAnalysis(ForwardAnalysis):
    """The unit-dimension domain over one function."""

    def __init__(self, registry: UnitRegistry,
                 resolve: "callable | None" = None) -> None:
        super().__init__()
        self.registry = registry
        #: dotted-call-name -> project-qualified name (from the index).
        self._resolve = resolve or (lambda dotted: dotted)
        self.reports: list[UnitReport] = []
        self._reported: set[int] = set()

    # -- engine hooks ---------------------------------------------------------

    def initial_env(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Env:
        env: Env = {}
        args = fn.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            dim = lexical_dim(a.arg)
            if dim is not None:
                env[a.arg] = dim
        return env

    def transfer_op(self, env: Env, op: ast.AST) -> Env:
        env = dict(env)
        if isinstance(op, ast.Assign):
            value = self._eval(env, op.value)
            for target in op.targets:
                self._bind(env, target, value, op)
        elif isinstance(op, ast.AnnAssign):
            value = self._eval(env, op.value) if op.value is not None \
                else None
            self._bind(env, op.target, value, op)
        elif isinstance(op, ast.AugAssign):
            self._aug_assign(env, op)
        elif isinstance(op, (ast.For, ast.AsyncFor)):
            self._eval(env, op.iter)
            self._bind_targets_unknown(env, op.target)
        elif isinstance(op, (ast.With, ast.AsyncWith)):
            for item in op.items:
                self._eval(env, item.context_expr)
                if item.optional_vars is not None:
                    self._bind_targets_unknown(env, item.optional_vars)
        elif isinstance(op, (ast.If, ast.While)):
            self._eval(env, op.test)
        elif isinstance(op, ast.Match):
            self._eval(env, op.subject)
        elif isinstance(op, ast.match_case):
            for name in _pattern_names(op.pattern):
                env[name] = TOP
            if op.guard is not None:
                self._eval(env, op.guard)
        elif isinstance(op, ast.ExceptHandler):
            if op.name:
                env[op.name] = TOP
        elif isinstance(op, ast.Return):
            if op.value is not None:
                self._eval(env, op.value)
        elif isinstance(op, ast.Expr):
            self._eval(env, op.value)
        elif isinstance(op, ast.Delete):
            for target in op.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(op, (ast.Global, ast.Nonlocal)):
            for name in op.names:
                env[name] = TOP
        elif isinstance(op, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            env[op.name] = TOP
        elif isinstance(op, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(op):
                if isinstance(child, ast.expr):
                    self._eval(env, child)
        return env

    # -- binding --------------------------------------------------------------

    def _bind(self, env: Env, target: ast.AST, value: Dim | None,
              op: ast.AST) -> None:
        if isinstance(target, ast.Name):
            hint = lexical_dim(target.id)
            if value is not None and hint is not None and hint != value:
                self._report(
                    "bind", op,
                    f"`{target.id}` promises {hint} by name but is bound "
                    f"to a {value} value; rename the binding or convert "
                    "via repro.util.units")
            env[target.id] = value if value is not None else TOP
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self._bind_targets_unknown(env, inner)
        # Attribute/Subscript targets carry no local binding.

    def _bind_targets_unknown(self, env: Env, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = TOP
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self._bind_targets_unknown(env, inner)

    def _aug_assign(self, env: Env, op: ast.AugAssign) -> None:
        left = self._eval(env, op.target) \
            if isinstance(op.target, (ast.Name, ast.Attribute)) else None
        right = self._eval(env, op.value)
        result = self._combine(op, op.op, left, right,
                               op.target, op.value)
        if isinstance(op.target, ast.Name):
            env[op.target.id] = result if result is not None else TOP

    # -- expression evaluation ------------------------------------------------

    def _eval(self, env: Env, node: ast.AST | None) -> Dim | None:
        """The inferred dimension of ``node``; ``None`` = unknown/⊤."""
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            return None  # scalar literals are polymorphic in dimension
        if isinstance(node, ast.Name):
            if node.id in env:
                value = env[node.id]
                return value if isinstance(value, Dim) else None
            return lexical_dim(node.id)
        if isinstance(node, ast.Attribute):
            self._eval(env, node.value)
            known = ATTR_DIMS.get(node.attr)
            if known is not None:
                return known
            return lexical_dim(node.attr)
        if isinstance(node, ast.BinOp):
            return self._binop(env, node)
        if isinstance(node, ast.Compare):
            return self._compare(env, node)
        if isinstance(node, ast.BoolOp):
            dims = [self._eval(env, v) for v in node.values]
            known = {d for d in dims if d is not None}
            return known.pop() if len(known) == 1 else None
        if isinstance(node, ast.UnaryOp):
            return self._eval(env, node.operand)
        if isinstance(node, ast.IfExp):
            self._eval(env, node.test)
            a = self._eval(env, node.body)
            b = self._eval(env, node.orelse)
            return a if a == b else None
        if isinstance(node, ast.NamedExpr):
            value = self._eval(env, node.value)
            self._bind(env, node.target, value, node)
            return value
        if isinstance(node, ast.Call):
            return self._call(env, node)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            # Comprehension targets live in their own scope: evaluate in
            # a clone so bindings do not leak into the outer env.
            inner = dict(env)
            for gen in node.generators:
                self._eval(inner, gen.iter)
                self._bind_targets_unknown(inner, gen.target)
                for cond in gen.ifs:
                    self._eval(inner, cond)
            for part in ("elt", "key", "value"):
                sub = getattr(node, part, None)
                if sub is not None:
                    self._eval(inner, sub)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict,
                             ast.Subscript, ast.Starred, ast.Lambda,
                             ast.Await, ast.JoinedStr, ast.FormattedValue,
                             ast.Slice)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(env, child)
            return None
        return None

    def _binop(self, env: Env, node: ast.BinOp) -> Dim | None:
        left = self._eval(env, node.left)
        right = self._eval(env, node.right)
        return self._combine(node, node.op, left, right,
                             node.left, node.right)

    def _combine(self, node: ast.AST, op: ast.operator,
                 left: Dim | None, right: Dim | None,
                 left_node: ast.AST, right_node: ast.AST) -> Dim | None:
        if isinstance(op, (ast.Add, ast.Sub)):
            if left is not None and right is not None:
                if left != right:
                    self._report_mix(node, left_node, right_node,
                                     left, right,
                                     "addition" if isinstance(op, ast.Add)
                                     else "subtraction")
                    return None
                return left
            return left if right is None else right \
                if left is None else left
        if isinstance(op, ast.Mult):
            if left is not None and right is not None:
                return left.mul(right)
            return None
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if left is not None and right is not None:
                return left.div(right)
            return None
        if isinstance(op, ast.Mod):
            if left is not None and right is not None and left == right:
                return left
            return None
        if isinstance(op, ast.Pow):
            return None
        return None

    def _compare(self, env: Env, node: ast.Compare) -> Dim | None:
        operands = [node.left, *node.comparators]
        dims = [self._eval(env, o) for o in operands]
        for (a_node, a), (b_node, b) in zip(zip(operands, dims),
                                            zip(operands[1:], dims[1:])):
            if a is not None and b is not None and a != b:
                self._report_mix(node, a_node, b_node, a, b, "comparison")
        return None

    def _call(self, env: Env, node: ast.Call) -> Dim | None:
        for kw in node.keywords:
            self._eval(env, kw.value)
        arg_dims = [self._eval(env, a) for a in node.args]
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        tail = dotted.rsplit(".", 1)[-1]
        if tail in _DIM_PRESERVING:
            known = {d for d in arg_dims if d is not None}
            return known.pop() if len(known) == 1 else None
        sig = self.registry.lookup(self._resolve(dotted)) or \
            self.registry.lookup(dotted)
        if sig is None:
            return None
        for i, (arg, dim) in enumerate(zip(node.args, arg_dims)):
            if i >= len(sig.params) or isinstance(arg, ast.Starred):
                break
            declared = sig.params[i]
            if declared is not None and dim is not None and dim != declared:
                self._report(
                    "sig", arg,
                    f"argument {i + 1} of `{dotted}` is declared "
                    f"{declared} but receives a {dim} value — likely "
                    "swapped or unconverted arguments")
        return sig.returns

    # -- reporting ------------------------------------------------------------

    def _report_mix(self, node: ast.AST, left_node: ast.AST,
                    right_node: ast.AST, left: Dim, right: Dim,
                    op_word: str) -> None:
        if _lexically_flagged(left_node, right_node):
            return  # UNT001's finding; do not double-report
        self._report(
            "mix", node,
            f"{op_word} mixes inferred dimensions: left side is {left}, "
            f"right side is {right}; convert via repro.util.units first")

    def _report(self, kind: str, node: ast.AST, message: str) -> None:
        if not self.observing:
            return
        key = (id(node), kind)
        if key in self._reported:
            return
        self._reported.add(key)
        self.reports.append(UnitReport(kind=kind, node=node,
                                       message=message))


def _lexically_flagged(left: ast.AST, right: ast.AST) -> bool:
    """True when the lexical UNT001 rule already flags this operand pair."""

    def _unit(node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return unit_of_name(node.attr)
        return None

    lunit, runit = _unit(left), _unit(right)
    return lunit is not None and runit is not None and lunit != runit


def _pattern_names(pattern: ast.pattern) -> Iterator[str]:
    for node in ast.walk(pattern):
        if isinstance(node, ast.MatchAs) and node.name:
            yield node.name
        elif isinstance(node, ast.MatchStar) and node.name:
            yield node.name
        elif isinstance(node, ast.MatchMapping) and node.rest:
            yield node.rest


def analyze_file(ctx: FileContext) -> list[UnitReport]:
    """Run the unit analysis once per file, shared by the UNT1xx rules."""
    cached = getattr(ctx, "_unitflow_reports", None)
    if cached is not None:
        return cached
    project = getattr(ctx, "project", None)
    if project is not None:
        registry = project.units
        module = project.module_of(ctx.relpath)
        resolve = (lambda dotted: project.index.resolve_call(module, dotted))
    else:
        registry = UnitRegistry()
        resolve = None
    reports: list[UnitReport] = []
    for fn in walk_functions(ctx.tree):
        analysis = UnitAnalysis(registry, resolve)
        analysis.analyze(fn, ctx.cfg_of(fn))
        reports.extend(analysis.reports)
    ctx._unitflow_reports = reports  # type: ignore[attr-defined]
    return reports


class _UnitFlowRule(Rule):
    """Shared driver: run the per-file analysis, keep one report kind."""

    tier = 2
    kind = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for report in analyze_file(ctx):
            if report.kind == self.kind:
                yield ctx.finding(self, report.node, report.message)


@register
class DimensionMixRule(_UnitFlowRule):
    """``UNT100``: inferred-dimension mixing in sums and comparisons."""

    id = "UNT100"
    name = "no-inferred-dimension-mixing"
    description = ("dataflow-inferred dimensions disagree in an additive "
                   "or comparison expression")
    kind = "mix"


@register
class SignatureArgumentRule(_UnitFlowRule):
    """``UNT101``: argument dimension contradicts a unit signature."""

    id = "UNT101"
    name = "unit-signature-argument"
    description = ("a call argument's inferred dimension contradicts the "
                   "registered unit signature (swapped rate/latency args)")
    kind = "sig"


@register
class DimensionLosingBindRule(_UnitFlowRule):
    """``UNT102``: binding relabels a quantity's dimension."""

    id = "UNT102"
    name = "no-dimension-losing-bind"
    description = ("a binding whose name promises one dimension receives "
                   "a value inferred to another")
    kind = "bind"
