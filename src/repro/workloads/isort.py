"""IS — NPB "Integer Sort" (Table I: bucket sort on integers).

The kernel is NPB IS's bucket sort: histogram keys into buckets, prefix-sum
the bucket counts, then compute each key's rank.  Its memory pattern is a
sequential read of the key array plus scattered increments into the bucket
histogram — moderate traffic with poor locality on the scatter.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import resolve_rng
from repro.util.validation import check_integer
from repro.workloads.base import BurstProfile, SizeSpec, Workload

#: NPB IS problem exponents: class X sorts 2^m keys with 2^k max key.
_CLASS_PARAMS = {
    "S": (16, 11),
    "W": (20, 16),
    "A": (23, 19),
    "B": (25, 21),
    "C": (27, 23),
}

_BURST = {
    "S": BurstProfile(True, 1.30, 0.02, 30.0),
    "W": BurstProfile(True, 1.40, 0.05, 20.0),
    "A": BurstProfile(True, 1.60, 0.15, 10.0),
    "B": BurstProfile(False, 2.0, 0.45, 3.5),
    "C": BurstProfile(False, 2.0, 0.70, 1.8),
}


def bucket_sort_ranks(keys: np.ndarray, max_key: int) -> np.ndarray:
    """NPB IS ranking: the rank of each key under a stable counting sort.

    Returns ``rank[i]`` = position of ``keys[i]`` in the sorted order.
    """
    if keys.ndim != 1:
        raise ValueError("keys must be 1-D")
    check_integer("max_key", max_key, minimum=1)
    if keys.size and (keys.min() < 0 or keys.max() >= max_key):
        raise ValueError("keys out of [0, max_key)")
    counts = np.bincount(keys, minlength=max_key)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    # Stable ranks: position = start of the key's bucket + the number of
    # equal keys seen earlier in the array.
    order = np.argsort(keys, kind="stable")
    ranks = np.empty(keys.size, dtype=np.int64)
    ranks[order] = np.arange(keys.size)
    # Consistency: ranks must agree with bucket starts.
    assert keys.size == 0 or int(ranks[order[0]]) == 0
    del starts
    return ranks


class IS(Workload):
    """Parallel bucket sort on integers."""

    name = "IS"
    description = "Parallel sorting: bucket sort on integers"

    work_ipc = 1.1
    base_stall_per_instr = 0.30
    calibration_mode = "miss_volume"
    smt_work_inflation = 0.18
    llc_sensitivity = 0.4
    #: Independent scatter updates overlap well at the controller.
    mlp = 8.0
    write_amplification = 1.3
    shared_data_fraction = 0.90  # global bucket histogram

    def sizes(self):
        specs = {}
        for cls, (m, k) in _CLASS_PARAMS.items():
            n_keys = 2.0 ** m
            specs[cls] = SizeSpec(
                name=cls,
                description=f"2^{m} integer keys, max key 2^{k}",
                working_set_bytes=n_keys * 4 * 2 + 2.0 ** k * 4,
                instructions=max(55.0 * n_keys, 3e9),
                ref_misses=0.12 * n_keys * (1.0 if m >= 25 else 0.3),
                burst=_BURST[cls],
            )
        return specs

    def run_kernel(self, scale: int = 1, rng=None) -> dict:
        """Sort ``2^(12 + scale)`` keys; verify order; return rank checksum."""
        check_integer("scale", scale, minimum=1, maximum=10)
        rng = resolve_rng(rng)
        n = 2 ** (12 + scale)
        max_key = 2 ** (8 + scale)
        keys = rng.integers(0, max_key, size=n).astype(np.int64)
        ranks = bucket_sort_ranks(keys, max_key)
        sorted_keys = np.empty_like(keys)
        sorted_keys[ranks] = keys
        if np.any(np.diff(sorted_keys) < 0):
            raise AssertionError("bucket sort produced unsorted output")
        return {
            "n_keys": n,
            "max_key": max_key,
            "checksum": float(np.bitwise_xor.reduce(ranks * (keys + 1))),
        }

    def address_trace(self, n_refs: int, rng=None, scale: int = 1) -> np.ndarray:
        """Alternating sequential key reads and random bucket increments."""
        check_integer("n_refs", n_refs, minimum=1)
        rng = resolve_rng(rng)
        key_bytes = (2 ** (12 + scale)) * 4
        bucket_bytes = (2 ** (8 + scale)) * 4
        addr = np.empty(n_refs, dtype=np.int64)
        # Even refs: stream the key array; odd refs: scatter into buckets.
        idx = np.arange(n_refs, dtype=np.int64)
        stream = (idx // 2 * 4) % key_bytes
        scatter = key_bytes + (
            rng.integers(0, max(bucket_bytes // 4, 1), size=n_refs) * 4)
        odd = (idx % 2).astype(bool)
        addr[~odd] = stream[~odd]
        addr[odd] = scatter[odd]
        return addr
