"""SP — NPB "Scalar Pentadiagonal" (Table I: structured grid solver).

NPB SP factorises and solves scalar pentadiagonal systems along every line
of a 3-D grid, in all three dimensions per time step.  We implement the
real core: a vectorised pentadiagonal (5-band) Gaussian elimination
without pivoting, applied along x-, y- and z-lines of a grid whose bands
come from a diagonally dominant model stencil.

SP is the paper's worst contention case (ω up to 11.6): sweeping all
three dimensions touches memory at three different strides, the z-sweep
with the largest one, producing enormous miss volume with *dependent*
accesses (each elimination step needs the previous line values), i.e. very
low memory-level parallelism.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import resolve_rng
from repro.util.validation import ValidationError, check_integer
from repro.workloads.base import BurstProfile, SizeSpec, Workload

#: NPB SP grid edge per class.
_CLASS_GRID = {"S": 12, "W": 36, "A": 64, "B": 102, "C": 162}
_CLASS_NITER = {"S": 100, "W": 400, "A": 400, "B": 400, "C": 400}

_BURST = {
    "S": BurstProfile(True, 1.30, 0.02, 28.0),
    "W": BurstProfile(True, 1.45, 0.05, 18.0),
    "A": BurstProfile(True, 1.75, 0.25, 7.0),
    "B": BurstProfile(False, 2.0, 0.70, 1.8),
    "C": BurstProfile(False, 2.0, 0.95, 1.05),
}


def penta_solve(bands: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve many pentadiagonal systems at once (forward elim + back subst).

    Parameters
    ----------
    bands:
        Array of shape ``(m, n, 5)``: for each of ``m`` independent lines
        of length ``n``, the five bands ``(a, b, c, d, e)`` = (2nd sub,
        1st sub, diagonal, 1st super, 2nd super).  Out-of-range band
        entries (first/last rows) must be zero.
    rhs:
        Right-hand sides, shape ``(m, n)``.

    Returns the solutions, shape ``(m, n)``.  No pivoting — callers must
    supply diagonally dominant systems (as SP's stencil matrices are).
    """
    bands = np.array(bands, dtype=np.float64)
    rhs = np.array(rhs, dtype=np.float64)
    if bands.ndim != 3 or bands.shape[-1] != 5:
        raise ValidationError("bands must have shape (m, n, 5)")
    m, n, _ = bands.shape
    if rhs.shape != (m, n):
        raise ValidationError("rhs shape must match bands")
    if n < 3:
        raise ValidationError("pentadiagonal systems need n >= 3")
    a = bands[:, :, 0]
    b = bands[:, :, 1]
    c = bands[:, :, 2]
    d = bands[:, :, 3]
    e = bands[:, :, 4]

    # Forward elimination: zero the two subdiagonals row by row.
    for i in range(1, n):
        # Eliminate b[i] using row i-1.
        piv = c[:, i - 1]
        if np.any(piv == 0):
            raise ValidationError("zero pivot in pentadiagonal elimination")
        f = b[:, i] / piv
        c[:, i] = c[:, i] - f * d[:, i - 1]
        if i < n - 1:
            d[:, i] = d[:, i] - f * e[:, i - 1]
        rhs[:, i] = rhs[:, i] - f * rhs[:, i - 1]
        if i + 1 < n:
            # Eliminate a[i+1] using row i-1.
            g = a[:, i + 1] / piv
            b[:, i + 1] = b[:, i + 1] - g * d[:, i - 1]
            c[:, i + 1] = c[:, i + 1] - g * e[:, i - 1]
            rhs[:, i + 1] = rhs[:, i + 1] - g * rhs[:, i - 1]

    # Back substitution with the remaining upper-triangular bands.
    x = np.empty_like(rhs)
    x[:, n - 1] = rhs[:, n - 1] / c[:, n - 1]
    x[:, n - 2] = (rhs[:, n - 2] - d[:, n - 2] * x[:, n - 1]) / c[:, n - 2]
    for i in range(n - 3, -1, -1):
        x[:, i] = (rhs[:, i] - d[:, i] * x[:, i + 1]
                   - e[:, i] * x[:, i + 2]) / c[:, i]
    return x


def model_bands(m: int, n: int, rng=None) -> np.ndarray:
    """Diagonally dominant pentadiagonal bands for ``m`` lines of length ``n``.

    Mimics SP's stencil systems: fixed off-diagonals with a dominant,
    slightly perturbed diagonal.
    """
    check_integer("m", m, minimum=1)
    check_integer("n", n, minimum=3)
    rng = resolve_rng(rng)
    bands = np.zeros((m, n, 5))
    bands[:, 2:, 0] = -0.05           # a: second sub
    bands[:, 1:, 1] = -0.25           # b: first sub
    bands[:, :, 2] = 1.0 + 0.1 * rng.random((m, n))  # c: diagonal
    bands[:, :-1, 3] = -0.25          # d: first super
    bands[:, :-2, 4] = -0.05          # e: second super
    return bands


def sweep_xyz(grid: np.ndarray, rng=None) -> np.ndarray:
    """One SP time step: pentadiagonal solves along x, then y, then z.

    ``grid`` has shape ``(nx, ny, nz)``; each axis sweep treats the other
    two axes as independent lines.
    """
    if grid.ndim != 3:
        raise ValidationError("grid must be 3-D")
    rng = resolve_rng(rng)
    out = np.asarray(grid, dtype=np.float64)
    nx, ny, nz = out.shape
    # x-sweep: lines along axis 0.
    lines = out.transpose(1, 2, 0).reshape(ny * nz, nx)
    sol = penta_solve(model_bands(ny * nz, nx, rng), lines)
    out = sol.reshape(ny, nz, nx).transpose(2, 0, 1)
    # y-sweep.
    lines = out.transpose(0, 2, 1).reshape(nx * nz, ny)
    sol = penta_solve(model_bands(nx * nz, ny, rng), lines)
    out = sol.reshape(nx, nz, ny).transpose(0, 2, 1)
    # z-sweep.
    lines = out.reshape(nx * ny, nz)
    sol = penta_solve(model_bands(nx * ny, nz, rng), lines)
    return sol.reshape(nx, ny, nz)


class SP(Workload):
    """Structured grid: scalar pentadiagonal solver."""

    name = "SP"
    description = "Structured grid: pentadiagonal solver"

    work_ipc = 1.1
    base_stall_per_instr = 0.45
    calibration_mode = "miss_volume"
    smt_work_inflation = 0.10
    llc_sensitivity = 0.6
    mlp = 1.6      # elimination recurrences serialise the misses
    write_amplification = 3.0   # ~15 arrays re-written per sweep + strided prefetch overfetch
    shared_data_fraction = 0.80  # paper's homogeneous-affinity regime

    def sizes(self):
        specs = {}
        for cls, edge in _CLASS_GRID.items():
            niter = _CLASS_NITER[cls]
            n = float(edge) ** 3
            specs[cls] = SizeSpec(
                name=cls,
                description=f"{edge}^3 grid, {niter} iterations",
                working_set_bytes=n * 8 * 15,   # ~15 grid-sized arrays
                instructions=max(900.0 * n * niter / 4.0, 4e9),
                ref_misses=2.1 * n * niter / 4.0 *
                (1.0 if edge >= 102 else 0.2) / 8.0,
                burst=_BURST[cls],
            )
        return specs

    def run_kernel(self, scale: int = 1, rng=None) -> dict:
        """Run three x/y/z sweep steps on a small grid."""
        check_integer("scale", scale, minimum=1, maximum=6)
        rng = resolve_rng(rng)
        edge = 8 * scale
        grid = rng.random((edge, edge, edge))
        out = grid
        for _ in range(3):
            out = sweep_xyz(out, rng)
        return {
            "grid": (edge, edge, edge),
            "checksum": float(np.abs(out).sum()),
            "max": float(np.abs(out).max()),
        }

    def address_trace(self, n_refs: int, rng=None, scale: int = 1) -> np.ndarray:
        """Three interleaved sweep phases with unit, row and plane strides."""
        check_integer("n_refs", n_refs, minimum=1)
        edge = 24 * scale
        n = edge ** 3
        elem = 8
        idx = np.arange(n_refs, dtype=np.int64)
        phase = (idx // max(n // 4, 1)) % 3
        pos = idx % n
        stride = np.choose(phase, [1, edge, edge * edge])
        addr = (pos * stride) % n * elem
        return addr
