"""EP — NPB "Embarrassingly Parallel" (Table I: low data dependency, low memory).

The real kernel generates pseudo-random pairs with the NPB linear
congruential generator, applies the Marsaglia polar method to produce
Gaussian deviates, and tallies them into ten square annuli — exactly NPB
EP's structure.  It touches almost no memory per instruction, which is why
the paper measures just 1,800 LLC misses for EP.C on one core, growing to
31,000,000 only when the run spans NUMA packages (a growth our
``miss_growth`` calibration mode models).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import resolve_rng
from repro.util.validation import check_integer
from repro.workloads.base import BurstProfile, SizeSpec, Workload

#: NPB LCG multiplier and modulus (a = 5^13, 2^46).
_LCG_A = 5 ** 13
_LCG_MOD = 2 ** 46

#: Problem exponents: EP class X generates 2^m pairs.
_CLASS_M = {"S": 24, "W": 25, "A": 28, "B": 30, "C": 32}

_BURST = {
    # EP's sparse traffic is always heavy-tailed: with so few requests, any
    # activity is an isolated burst.
    "S": BurstProfile(True, 1.25, 0.004, 40.0),
    "W": BurstProfile(True, 1.30, 0.005, 35.0),
    "A": BurstProfile(True, 1.40, 0.008, 30.0),
    "B": BurstProfile(True, 1.50, 0.010, 25.0),
    "C": BurstProfile(True, 1.60, 0.015, 20.0),
}


def lcg_stream(seed: int, n: int) -> np.ndarray:
    """NPB-style LCG uniforms in (0, 1): x_{k+1} = a x_k mod 2^46.

    Vectorised by jumping the generator: since the recurrence is linear,
    ``x_{k} = a^k x_0 mod 2^46``; we compute multipliers by repeated
    squaring in Python ints (exact) and map in blocks.
    """
    check_integer("n", n, minimum=1)
    if not 0 < seed < _LCG_MOD:
        raise ValueError(f"seed must be in (0, 2^46), got {seed}")
    out = np.empty(n, dtype=np.float64)
    x = seed
    # Block iteration: python-int exactness with modest loop overhead.
    block = 65536
    i = 0
    while i < n:
        m = min(block, n - i)
        vals = np.empty(m, dtype=np.float64)
        for j in range(m):
            x = (x * _LCG_A) % _LCG_MOD
            vals[j] = x
        out[i:i + m] = vals / _LCG_MOD
        i += m
    return out


def marsaglia_annuli(u: np.ndarray) -> tuple[np.ndarray, float, float]:
    """Marsaglia polar transform + NPB EP annulus counting.

    ``u`` supplies 2k uniforms in (0,1); pairs with ``t = x^2+y^2 <= 1``
    yield Gaussian deviates ``(X, Y)``; deviates are tallied into annuli
    ``l = floor(max(|X|, |Y|))`` for l = 0..9.  Returns ``(counts, sx, sy)``
    with the Gaussian sums, which NPB uses as the verification values.
    """
    if u.size < 2:
        raise ValueError("need at least one pair of uniforms")
    m = u.size // 2
    x = 2.0 * u[:2 * m:2] - 1.0
    y = 2.0 * u[1:2 * m:2] - 1.0
    t = x * x + y * y
    ok = (t <= 1.0) & (t > 0.0)
    x, y, t = x[ok], y[ok], t[ok]
    factor = np.sqrt(-2.0 * np.log(t) / t)
    gx = x * factor
    gy = y * factor
    level = np.floor(np.maximum(np.abs(gx), np.abs(gy))).astype(np.int64)
    level = np.clip(level, 0, 9)
    counts = np.bincount(level, minlength=10)
    return counts, float(gx.sum()), float(gy.sum())


class EP(Workload):
    """Embarrassingly parallel Gaussian-deviate counting."""

    name = "EP"
    description = "Embarrassingly parallel: low data dependency, low memory"

    work_ipc = 2.0                 # dense FP arithmetic, high ILP
    base_stall_per_instr = 0.30    # sqrt/log latency chains stall in-core
    calibration_mode = "miss_growth"
    smt_work_inflation = 0.02
    cache_bonus = 0.30             # extra private cache = visibly fewer stalls
                                   # (paper Fig. 6b: omega ~ -0.1 below 12 cores)
    llc_sensitivity = 0.0
    cold_miss_fraction = 0.0       # sequential batch writes fully prefetched
                                   # (paper: 1,800 LLC misses for 920 MB)
    shared_data_fraction = 0.9   # the few misses are to shared tables

    def sizes(self):
        specs = {}
        for cls, m in _CLASS_M.items():
            pairs = 2.0 ** m
            specs[cls] = SizeSpec(
                name=cls,
                description=f"2^{m} random pairs",
                # The benchmark materialises batches of deviates; the paper
                # reports a 920 MB working set for EP.C.
                working_set_bytes=920e6 * (pairs / 2.0 ** 32),
                instructions=90.0 * pairs,   # ~90 dynamic instr per pair
                ref_misses=1.8e3 * (pairs / 2.0 ** 32),  # paper: 1800 @ C
                burst=_BURST[cls],
            )
        return specs

    def run_kernel(self, scale: int = 1, rng=None) -> dict:
        """Generate ``2^(14 + scale)`` pairs and tally annuli."""
        check_integer("scale", scale, minimum=1, maximum=8)
        n_pairs = 2 ** (14 + scale)
        u = lcg_stream(seed=271828183, n=2 * n_pairs)
        counts, sx, sy = marsaglia_annuli(u)
        return {
            "pairs": n_pairs,
            "annuli": counts,
            "sum_x": sx,
            "sum_y": sy,
            "checksum": float(counts.sum()),
        }

    def address_trace(self, n_refs: int, rng=None, scale: int = 1) -> np.ndarray:
        """EP touches a tiny circular batch buffer, rarely anything else."""
        check_integer("n_refs", n_refs, minimum=1)
        rng = resolve_rng(rng)
        buffer_bytes = 16 * 1024  # deviate batch fits in L1
        table_bytes = int(2e6) * scale
        seq = (np.arange(n_refs, dtype=np.int64) * 8) % buffer_bytes
        # ~0.1% of references consult a large initialisation table.
        rare = rng.random(n_refs) < 1e-3
        addr = seq.copy()
        addr[rare] = buffer_bytes + (
            rng.integers(0, table_bytes // 64, size=int(rare.sum())) * 64)
        return addr
