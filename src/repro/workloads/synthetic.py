"""Synthetic address-stream generators.

Reusable reference streams with controlled locality, for exercising the
cache simulator and for composing custom workloads.  Each generator
returns a 1-D array of byte addresses; all are deterministic under a
seed.  The built-in programs' ``address_trace`` methods are built from
the same idioms; these standalone versions expose them as a library
surface (and give the cache tests analytically predictable inputs).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import resolve_rng
from repro.util.validation import (
    ValidationError,
    check_integer,
    check_positive,
)


def sequential_stream(n_refs: int, working_set_bytes: int,
                      stride: int = 8) -> np.ndarray:
    """A streaming pass: ``addr_i = (i * stride) mod working_set``.

    The best case for caches and prefetchers; misses are one per line
    per pass.
    """
    check_integer("n_refs", n_refs, minimum=1)
    check_integer("working_set_bytes", working_set_bytes, minimum=1)
    check_integer("stride", stride, minimum=1)
    idx = np.arange(n_refs, dtype=np.int64)
    return (idx * stride) % working_set_bytes


def strided_stream(n_refs: int, working_set_bytes: int,
                   stride: int) -> np.ndarray:
    """Fixed-stride sweep (column walks, SP's y/z line sweeps).

    Strides at or above the line size defeat spatial locality: every
    reference touches a new line until the sweep wraps.
    """
    return sequential_stream(n_refs, working_set_bytes, stride)


def random_stream(n_refs: int, working_set_bytes: int,
                  granule: int = 64, rng=None) -> np.ndarray:
    """Uniform random line-granular references (IS's scatter, at worst)."""
    check_integer("n_refs", n_refs, minimum=1)
    check_integer("granule", granule, minimum=1)
    n_granules = working_set_bytes // granule
    if n_granules < 1:
        raise ValidationError("working set smaller than one granule")
    rng = resolve_rng(rng)
    return rng.integers(0, n_granules, size=n_refs) * granule


def zipf_stream(n_refs: int, working_set_bytes: int, skew: float = 1.2,
                granule: int = 64, rng=None) -> np.ndarray:
    """Zipf-distributed references: few hot lines, long cold tail.

    ``skew`` > 1 concentrates accesses (cache-friendly hot set);
    approaching 1 flattens toward uniform.
    """
    check_integer("n_refs", n_refs, minimum=1)
    check_positive("skew", skew)
    if skew <= 1.0:
        raise ValidationError("zipf skew must be > 1 for numpy's sampler")
    n_granules = working_set_bytes // granule
    if n_granules < 1:
        raise ValidationError("working set smaller than one granule")
    rng = resolve_rng(rng)
    ranks = rng.zipf(skew, size=n_refs)
    return ((ranks - 1) % n_granules) * granule


def pointer_chase(n_refs: int, working_set_bytes: int, granule: int = 64,
                  rng=None) -> np.ndarray:
    """A dependent pointer chain over a random permutation of lines.

    The canonical latency-bound pattern: no two consecutive references
    share a line, and the order is a single cycle through the working
    set (so the miss rate is exactly one per reference once the set
    exceeds the cache).
    """
    check_integer("n_refs", n_refs, minimum=1)
    n_granules = working_set_bytes // granule
    if n_granules < 2:
        raise ValidationError("pointer chase needs at least two granules")
    rng = resolve_rng(rng)
    perm = rng.permutation(n_granules)
    # next[perm[i]] = perm[i+1] forms one big cycle.
    nxt = np.empty(n_granules, dtype=np.int64)
    nxt[perm] = np.roll(perm, -1)
    out = np.empty(n_refs, dtype=np.int64)
    cur = int(perm[0])
    for i in range(n_refs):
        out[i] = cur
        cur = int(nxt[cur])
    return out * granule


def tiled_2d(n_refs: int, width: int, height: int, tile: int = 16,
             elem: int = 1) -> np.ndarray:
    """Tile-ordered 2-D walk (x264's macroblock raster, GEMM tiling).

    Visits ``tile x tile`` blocks row-major, touching each block's
    elements row by row — strong short-term reuse inside a block,
    streaming across blocks.
    """
    check_integer("n_refs", n_refs, minimum=1)
    check_integer("tile", tile, minimum=1)
    if width < tile or height < tile:
        raise ValidationError("image smaller than one tile")
    tiles_x = width // tile
    tiles_y = height // tile
    idx = np.arange(n_refs, dtype=np.int64)
    per_tile = tile * tile
    t = (idx // per_tile) % (tiles_x * tiles_y)
    inner = idx % per_tile
    ty, tx = t // tiles_x, t % tiles_x
    ry, rx = inner // tile, inner % tile
    return ((ty * tile + ry) * width + tx * tile + rx) * elem


def interleave(*streams: np.ndarray) -> np.ndarray:
    """Round-robin interleaving of equal-length streams.

    Models threads sharing a cache: the combined stream alternates one
    reference from each input.
    """
    if not streams:
        raise ValidationError("need at least one stream")
    length = streams[0].shape[0]
    if any(s.shape != (length,) for s in streams):
        raise ValidationError("streams must be equal-length 1-D arrays")
    return np.stack(streams, axis=1).reshape(-1)
