"""CG — NPB "Conjugate Gradient" (Table I: sparse linear algebra).

NPB CG estimates the largest eigenvalue of a sparse symmetric matrix with
inverse power iteration, solving ``(A - shift I) z = x`` by conjugate
gradient in the inner loop.  We implement that structure on a randomly
generated sparse SPD matrix in CSR form, with our own CG and CSR
matrix-vector product.  The memory pattern is the paper's "sparse matrix
with many 0 values": sequential streaming of the CSR arrays plus an
irregular gather of ``x[col[j]]`` — moderate-to-high contention, the
paper's representative program.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.util.rng import resolve_rng
from repro.util.validation import ValidationError, check_integer
from repro.workloads.base import BurstProfile, SizeSpec, Workload

#: NPB CG matrix orders per class (Table III: "matrix of size 1400^2" etc.
#: describes the full na x na matrix).
_CLASS_NA = {"S": 1400, "W": 7000, "A": 14000, "B": 75000, "C": 150000}
#: Nonzeros per row and outer iterations per class (NPB specification).
_CLASS_NONZER = {"S": 7, "W": 8, "A": 11, "B": 13, "C": 15}
_CLASS_NITER = {"S": 15, "W": 15, "A": 15, "B": 75, "C": 75}

_BURST = {
    # Fig. 4(a): S and W show the straight heavy tail; B and C do not.
    "S": BurstProfile(True, 1.25, 0.015, 35.0),
    "W": BurstProfile(True, 1.40, 0.04, 22.0),
    "A": BurstProfile(True, 1.70, 0.18, 9.0),
    "B": BurstProfile(False, 2.0, 0.60, 2.2),
    "C": BurstProfile(False, 2.0, 0.90, 1.15),
}


def make_sparse_spd(n: int, nonzer: int, rng=None) -> sparse.csr_matrix:
    """Random sparse symmetric positive-definite matrix, ~``nonzer``/row.

    Built as ``M = S + S^T + d I`` with ``S`` random sparse and ``d`` large
    enough to dominate (diagonally dominant => SPD), echoing NPB CG's
    ``makea`` construction of a matrix with known spectrum.
    """
    check_integer("n", n, minimum=2)
    check_integer("nonzer", nonzer, minimum=1)
    rng = resolve_rng(rng)
    nnz = n * nonzer
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    vals = rng.random(nnz) - 0.5
    s = sparse.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    m = s + s.T
    # Diagonal dominance: row sums of absolute values plus margin.
    row_abs = np.asarray(abs(m).sum(axis=1)).ravel()
    m = m + sparse.diags(row_abs + 0.1)
    return m.tocsr()


def csr_matvec(indptr: np.ndarray, indices: np.ndarray, data: np.ndarray,
               x: np.ndarray) -> np.ndarray:
    """CSR sparse matrix-vector product, written out explicitly.

    Row-segmented reduction via ``np.add.reduceat`` — no scipy in the hot
    path, since this *is* the kernel being modelled.
    """
    if indptr.ndim != 1 or indptr[0] != 0:
        raise ValidationError("malformed CSR indptr")
    products = data * x[indices]
    # reduceat needs non-empty segments; map empty rows to zero after.
    starts = indptr[:-1]
    out = np.zeros(indptr.size - 1, dtype=np.float64)
    nonempty = np.diff(indptr) > 0
    if products.size:
        sums = np.add.reduceat(products, starts[nonempty])
        out[nonempty] = sums
    return out


def conjugate_gradient(a: sparse.csr_matrix, b: np.ndarray,
                       iterations: int = 25) -> tuple[np.ndarray, float]:
    """Fixed-iteration CG solve (NPB CG's inner loop shape).

    Returns ``(z, residual_norm)`` after exactly ``iterations`` steps.
    """
    check_integer("iterations", iterations, minimum=1)
    indptr, indices, data = a.indptr, a.indices, a.data
    z = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rho = float(r @ r)
    for _ in range(iterations):
        q = csr_matvec(indptr, indices, data, p)
        denom = float(p @ q)
        if denom <= 0:
            raise ValidationError("matrix is not positive definite")
        alpha = rho / denom
        z = z + alpha * p
        r = r - alpha * q
        rho_new = float(r @ r)
        beta = rho_new / rho
        rho = rho_new
        p = r + beta * p
    resid = csr_matvec(indptr, indices, data, z) - b
    return z, float(np.linalg.norm(resid))


def power_iteration_zeta(a: sparse.csr_matrix, shift: float,
                         outer: int = 5, inner: int = 25) -> float:
    """NPB CG's eigenvalue estimate ``zeta = shift + 1/(x . z)``.

    Runs ``outer`` inverse-power steps, each solving ``A z = x`` with
    ``inner`` CG iterations (the NPB formulation with the shift folded
    into the final estimate).
    """
    n = a.shape[0]
    x = np.ones(n)
    zeta = 0.0
    for _ in range(outer):
        z, _ = conjugate_gradient(a, x, iterations=inner)
        denom = float(x @ z)
        if denom == 0:
            raise ValidationError("degenerate power iteration")
        zeta = shift + 1.0 / denom
        x = z / np.linalg.norm(z)
    return zeta


class CG(Workload):
    """Sparse linear algebra: conjugate-gradient eigenvalue estimation."""

    name = "CG"
    description = "Sparse linear algebra: data with many 0 values"

    work_ipc = 1.2
    base_stall_per_instr = 0.40
    calibration_mode = "miss_volume"
    smt_work_inflation = 0.12
    llc_sensitivity = 0.5
    mlp = 4.0          # gathers expose some, not all, overlap
    write_amplification = 1.5
    shared_data_fraction = 0.90  # shared x vector dominates traffic

    def sizes(self):
        specs = {}
        for cls, na in _CLASS_NA.items():
            nonzer = _CLASS_NONZER[cls]
            niter = _CLASS_NITER[cls]
            # NPB's makea produces ~na (nonzer+1)^2 nonzeros after the
            # outer-product fill (CG.C: ~3.8e7 nonzeros, ~0.5 GB in CSR).
            nnz = float(na) * (nonzer + 1) ** 2
            flops_per_iter = 2.0 * nnz + 10.0 * na
            specs[cls] = SizeSpec(
                name=cls,
                description=f"matrix of size {na:,}^2".replace(",", ", "),
                working_set_bytes=nnz * 12 + 5.0 * na * 8,
                instructions=max(2.2 * flops_per_iter * niter * 25, 4e9),
                ref_misses=0.9 * nnz * niter * 25 / 15.0 *
                (1.0 if na >= 75000 else 0.25),
                burst=_BURST[cls],
            )
        return specs

    def run_kernel(self, scale: int = 1, rng=None) -> dict:
        """Estimate the dominant-shift eigenvalue on a small matrix."""
        check_integer("scale", scale, minimum=1, maximum=6)
        rng = resolve_rng(rng)
        n = 350 * scale
        a = make_sparse_spd(n, nonzer=7, rng=rng)
        zeta = power_iteration_zeta(a, shift=10.0, outer=3, inner=20)
        _, resid = conjugate_gradient(a, np.ones(n), iterations=20)
        return {
            "n": n,
            "zeta": zeta,
            "residual": resid,
            "checksum": float(zeta),
        }

    def address_trace(self, n_refs: int, rng=None, scale: int = 1) -> np.ndarray:
        """CSR streaming plus irregular vector gather (1:1 mix)."""
        check_integer("n_refs", n_refs, minimum=1)
        rng = resolve_rng(rng)
        na = 4096 * scale
        vec_bytes = na * 8
        csr_bytes = na * 8 * 8          # data + indices of ~8 nnz/row
        idx = np.arange(n_refs, dtype=np.int64)
        stream = (idx * 8) % csr_bytes
        gather = csr_bytes + rng.integers(0, na, size=n_refs) * 8
        gather = np.minimum(gather, csr_bytes + vec_bytes - 8)
        addr = np.where(idx % 2 == 0, stream, gather)
        return addr
