"""FT — NPB "Fourier Transform" (Table I: spectral methods, 3-D FFT).

The kernel is a self-contained radix-2 Cooley-Tukey FFT applied along each
axis of a 3-D array, followed by the NPB "evolve" step (frequency-domain
multiplication by a Gaussian kernel) and an inverse transform — the
structure of NPB FT's time-stepping loop.  FT streams large planes with
power-of-two strides, giving high traffic volume but good overlap (high
memory-level parallelism), so its contention sits between IS and CG.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import resolve_rng
from repro.util.validation import ValidationError, check_integer
from repro.workloads.base import BurstProfile, SizeSpec, Workload

#: NPB FT grid dimensions per class.
_CLASS_GRID = {
    "S": (64, 64, 64),
    "W": (128, 128, 32),
    "A": (256, 256, 128),
    "B": (512, 256, 256),
    "C": (512, 512, 512),
}

_BURST = {
    "S": BurstProfile(True, 1.35, 0.03, 25.0),
    "W": BurstProfile(True, 1.45, 0.06, 18.0),
    "A": BurstProfile(True, 1.70, 0.20, 8.0),
    "B": BurstProfile(False, 2.0, 0.55, 2.5),
    "C": BurstProfile(False, 2.0, 0.80, 1.4),
}


def fft1d(x: np.ndarray) -> np.ndarray:
    """Iterative radix-2 decimation-in-time FFT along the last axis.

    Length must be a power of two.  Matches ``numpy.fft.fft`` to floating
    precision (verified by the test suite); implemented here because the
    reproduction builds every substrate from scratch.
    """
    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[-1]
    if n & (n - 1) or n == 0:
        raise ValidationError(f"FFT length {n} is not a power of two")
    levels = n.bit_length() - 1
    # Bit-reversal permutation.
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(levels):
        rev |= ((idx >> b) & 1) << (levels - 1 - b)
    y = x[..., rev].copy()
    half = 1
    while half < n:
        # Twiddles for this stage.
        w = np.exp(-2j * np.pi * np.arange(half) / (2 * half))
        step = 2 * half
        blocks = y.reshape(*y.shape[:-1], n // step, step)
        # Copy: the slice is a view into ``blocks`` and is written below.
        even = blocks[..., :half].copy()
        odd = blocks[..., half:] * w
        blocks[..., :half] = even + odd
        blocks[..., half:] = even - odd
        half = step
    return y


def ifft1d(x: np.ndarray) -> np.ndarray:
    """Inverse FFT via conjugation: ``ifft(x) = conj(fft(conj(x)))/n``."""
    return np.conj(fft1d(np.conj(np.asarray(x, dtype=np.complex128)))) \
        / x.shape[-1]


def fft3d(grid: np.ndarray) -> np.ndarray:
    """3-D FFT by axis-wise application of :func:`fft1d`."""
    if grid.ndim != 3:
        raise ValidationError("grid must be 3-D")
    out = fft1d(grid)
    out = np.moveaxis(fft1d(np.moveaxis(out, 1, -1)), -1, 1)
    out = np.moveaxis(fft1d(np.moveaxis(out, 0, -1)), -1, 0)
    return out


def ifft3d(grid: np.ndarray) -> np.ndarray:
    """3-D inverse FFT."""
    if grid.ndim != 3:
        raise ValidationError("grid must be 3-D")
    out = ifft1d(grid)
    out = np.moveaxis(ifft1d(np.moveaxis(out, 1, -1)), -1, 1)
    out = np.moveaxis(ifft1d(np.moveaxis(out, 0, -1)), -1, 0)
    return out


def evolve_checksum(grid: np.ndarray, iterations: int = 3,
                    tau: float = 1e-6) -> complex:
    """NPB FT time-stepping: forward FFT, repeated Gaussian evolve + checksum.

    Returns the sum of a strided subset of elements after the final
    inverse transform (NPB's verification checksum style).
    """
    check_integer("iterations", iterations, minimum=1)
    nx, ny, nz = grid.shape
    kx = np.minimum(np.arange(nx), nx - np.arange(nx))[:, None, None]
    ky = np.minimum(np.arange(ny), ny - np.arange(ny))[None, :, None]
    kz = np.minimum(np.arange(nz), nz - np.arange(nz))[None, None, :]
    k2 = (kx ** 2 + ky ** 2 + kz ** 2).astype(float)
    freq = fft3d(grid)
    total = 0.0 + 0.0j
    for it in range(1, iterations + 1):
        freq = freq * np.exp(-4.0 * np.pi ** 2 * tau * k2)
        back = ifft3d(freq)
        flat = back.ravel()
        stride = max(flat.size // 1024, 1)
        total += complex(flat[::stride].sum())
    return total


class FT(Workload):
    """Spectral method: 3-D fast Fourier transform."""

    name = "FT"
    description = "Spectral methods: fast Fourier transform"

    work_ipc = 1.4
    base_stall_per_instr = 0.30
    calibration_mode = "miss_volume"
    smt_work_inflation = 0.10
    llc_sensitivity = 0.3
    mlp = 8.0          # streaming butterflies overlap deeply
    write_amplification = 1.8   # every butterfly writes its plane back
    shared_data_fraction = 0.95  # transposes are all-to-all

    def sizes(self):
        specs = {}
        for cls, (nx, ny, nz) in _CLASS_GRID.items():
            n = float(nx * ny * nz)
            logn = np.log2(n)
            specs[cls] = SizeSpec(
                name=cls,
                description=f"{nx} x {ny} x {nz} complex grid",
                working_set_bytes=n * 16 * 2,   # two complex arrays
                instructions=max(38.0 * n * logn, 4e9),
                ref_misses=0.45 * n * (logn / 8.0),
                burst=_BURST[cls],
            )
        return specs

    def run_kernel(self, scale: int = 1, rng=None) -> dict:
        """Transform a ``2^(3+scale)``-cubed grid and evolve three steps."""
        check_integer("scale", scale, minimum=1, maximum=4)
        rng = resolve_rng(rng)
        n = 2 ** (3 + scale)
        grid = rng.random((n, n, n)) + 1j * rng.random((n, n, n))
        total = evolve_checksum(grid, iterations=3)
        return {
            "grid": (n, n, n),
            "checksum": float(abs(total)),
            "checksum_complex": total,
        }

    def address_trace(self, n_refs: int, rng=None, scale: int = 1) -> np.ndarray:
        """Butterfly access pattern: paired reads at power-of-two strides."""
        check_integer("n_refs", n_refs, minimum=1)
        n = 2 ** (12 + 2 * scale)   # elements in the working array
        elem = 16                   # complex128
        idx = np.arange(n_refs, dtype=np.int64)
        # Cycle through FFT stages; within a stage, access i and i + half.
        stage = (idx // n) % max(int(np.log2(n)), 1)
        half = np.int64(1) << stage.astype(np.int64)
        pos = idx % n
        partner = (pos ^ half) % n
        addr = np.where(idx % 2 == 0, pos, partner) * elem
        return addr
