"""Workload abstractions: size specs, burst profiles, memory profiles.

A :class:`Workload` describes one Table I program.  Its
:meth:`~Workload.profile` method materialises, for a given problem class
and machine, the aggregate quantities that drive the measurement
substrate.  The split mirrors how the paper treats programs: counter-level
aggregates plus a traffic-burstiness characterisation, never
instruction-level detail.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Mapping

import numpy as np

from repro.machine.topology import Machine
from repro.util.validation import (
    ValidationError,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)


class WorkloadError(ValidationError):
    """Raised for unknown programs, classes or invalid workload parameters."""


@dataclass(frozen=True)
class BurstProfile:
    """Burstiness of a program/class's off-chip request traffic.

    The paper's Fig. 4 finding in parameters: small classes are ON/OFF with
    heavy-tailed (Pareto) ON periods; large contended classes approach a
    saturated, smooth flow.

    Parameters
    ----------
    heavy_tailed:
        Whether ON-period durations are Pareto (True) or exponential.
    alpha:
        Pareto tail index of ON periods (relevant when heavy_tailed);
        smaller alpha = heavier bursts.
    duty_cycle:
        Long-run fraction of time the source is ON; saturated traffic has
        duty_cycle near 1.
    arrival_scv:
        Summary squared coefficient of variation of interarrival times,
        consumed by the flow-level G/G/1 correction (1 = Poisson-like).
    """

    heavy_tailed: bool
    alpha: float
    duty_cycle: float
    arrival_scv: float

    def __post_init__(self) -> None:
        if self.heavy_tailed:
            check_in_range("alpha", self.alpha, 1.05, 10.0)
        check_in_range("duty_cycle", self.duty_cycle, 1e-6, 1.0)
        check_nonnegative("arrival_scv", self.arrival_scv)

    @property
    def is_bursty(self) -> bool:
        """The paper's qualitative split: heavy-tailed or high-SCV traffic."""
        return self.heavy_tailed or self.arrival_scv > 2.0


@dataclass(frozen=True)
class SizeSpec:
    """One problem class of a program (a Table III row).

    Parameters
    ----------
    name:
        Class letter (``"S"``..``"C"``) or PARSEC input name.
    description:
        Human-readable problem dimensions (Table III wording).
    working_set_bytes:
        Resident data footprint.
    instructions:
        Total dynamic instructions across all threads.
    ref_misses:
        LLC misses expected on the *reference* 12 MiB LLC machine; the
        per-machine profile rescales this by cache capacity, and the
        calibrated runtime may override it entirely.
    burst:
        Traffic burstiness of this class.
    """

    name: str
    description: str
    working_set_bytes: float
    instructions: float
    ref_misses: float
    burst: BurstProfile

    def __post_init__(self) -> None:
        check_positive("working_set_bytes", self.working_set_bytes)
        check_positive("instructions", self.instructions)
        check_positive("ref_misses", self.ref_misses)


#: LLC capacity of the reference machine for ``SizeSpec.ref_misses``.
REFERENCE_LLC_BYTES: float = 12 * 1024 * 1024


@dataclass(frozen=True)
class MemoryProfile:
    """Counter-level description of (program, class) on a machine.

    This is the interface between workloads and the measurement substrate:
    everything the closed-network flow solver needs, nothing more.

    Attributes
    ----------
    program, size:
        Identity of the workload and problem class.
    instructions:
        Total dynamic instructions (PAPI_TOT_INS; constant in core count).
    work_ipc:
        Instructions retired per non-stalled cycle; sets W = I / work_ipc.
    base_stall_per_instr:
        Non-off-chip stall cycles per instruction (pipeline hazards, cache
        hits, branch mispredictions); sets B.
    llc_misses:
        Off-chip requests r before any calibration override.
    burst:
        Traffic burstiness (drives both Fig. 4 and the flow corrections).
    working_set_bytes:
        Footprint; used for swap checks (the paper swaps FT.C on UMA) and
        for documentation.
    calibration_mode:
        ``"miss_volume"`` — calibrate r against the Table II anchor
        (contended programs); ``"miss_growth"`` — calibrate the
        cross-package miss inflation (EP-like programs whose misses grow
        with the span); ``"none"`` — use the profile as-is (x264).
    smt_work_inflation:
        Fractional work-cycle inflation when both SMT threads of a
        physical core are active (0 for machines without SMT).
    cross_package_miss_growth:
        Additional misses (absolute count) incurred when the allocation
        spans multiple packages, scaled by the cross-package share.
    cache_bonus:
        Relative reduction of base stalls as active private cache
        aggregates grow (produces the paper's negative contention for
        EP.C below one full package).
    mlp:
        Memory-level parallelism: overlapping off-chip requests per stall
        episode.  A core stalls once per ``mlp`` misses; the controller
        still serves every miss, so utilisation is unchanged but the
        per-miss stall shrinks.  Programs with dependent access chains
        (SP's 3-D line sweeps) have low mlp, which is why they suffer the
        paper's largest contention.
    write_amplification:
        Channel traffic per demand miss: write-backs of dirty lines and
        useless hardware prefetches occupy DRAM channels without adding
        waiting cores.  Write-heavy multi-array sweeps (SP) sit near 2.5,
        read-mostly kernels near 1.
    shared_data_fraction:
        Fraction of accesses to data shared across threads.  Under
        first-touch allocation thread-private data lives on the thread's
        own NUMA node; only the shared fraction spreads over active
        processors (the paper's homogeneous-affinity assumption applied to
        that fraction).  All-to-all kernels (FT transposes) sit near 0.6,
        partitioned sweeps near 0.3.
    remote_penalty:
        Workload-specific scaling of the cost of *remote* NUMA accesses
        (interconnect hop latency and link occupancy).  Coherence-protocol
        overhead per remote line varies widely with the sharing pattern —
        read-shared lines ship once, migratory and falsely-shared lines
        bounce — so this is a per-workload quantity.  The second
        calibration knob on NUMA machines (see
        :mod:`repro.runtime.calibration`).
    """

    program: str
    size: str
    instructions: float
    work_ipc: float
    base_stall_per_instr: float
    llc_misses: float
    burst: BurstProfile
    working_set_bytes: float
    calibration_mode: str = "miss_volume"
    smt_work_inflation: float = 0.0
    cross_package_miss_growth: float = 0.0
    cache_bonus: float = 0.0
    mlp: float = 4.0
    write_amplification: float = 1.0
    shared_data_fraction: float = 0.4
    remote_penalty: float = 1.0

    def __post_init__(self) -> None:
        check_positive("instructions", self.instructions)
        check_positive("work_ipc", self.work_ipc)
        check_nonnegative("base_stall_per_instr", self.base_stall_per_instr)
        check_positive("llc_misses", self.llc_misses)
        check_positive("working_set_bytes", self.working_set_bytes)
        if self.calibration_mode not in ("miss_volume", "miss_growth", "none"):
            raise WorkloadError(
                f"unknown calibration_mode {self.calibration_mode!r}")
        check_nonnegative("smt_work_inflation", self.smt_work_inflation)
        check_nonnegative("cross_package_miss_growth",
                          self.cross_package_miss_growth)
        check_probability("cache_bonus", self.cache_bonus)
        check_in_range("mlp", self.mlp, 1.0, 64.0)
        check_in_range("write_amplification", self.write_amplification,
                       1.0, 8.0)
        check_probability("shared_data_fraction", self.shared_data_fraction)
        check_in_range("remote_penalty", self.remote_penalty, 0.0, 256.0)

    @property
    def work_cycles(self) -> float:
        """W: cycles in which at least one instruction completes."""
        return self.instructions / self.work_ipc

    @property
    def base_stall_cycles(self) -> float:
        """B: stall cycles not caused by off-chip contention."""
        return self.instructions * self.base_stall_per_instr

    @property
    def uncontended_compute_cycles(self) -> float:
        """W + B: everything except off-chip memory time."""
        return self.work_cycles + self.base_stall_cycles

    def with_misses(self, misses: float) -> "MemoryProfile":
        """Copy with a calibrated off-chip request count."""
        check_positive("misses", misses)
        return replace(self, llc_misses=misses)

    def with_cross_package_growth(self, growth: float) -> "MemoryProfile":
        """Copy with a calibrated cross-package miss inflation."""
        check_nonnegative("growth", growth)
        return replace(self, cross_package_miss_growth=growth)

    def with_remote_penalty(self, penalty: float) -> "MemoryProfile":
        """Copy with a calibrated remote-access penalty."""
        return replace(self, remote_penalty=penalty)


class Workload(abc.ABC):
    """One Table I program."""

    #: Table I short name (``"EP"``, ..., ``"x264"``).
    name: str = ""
    #: Table I parallel-kernel description.
    description: str = ""

    @abc.abstractmethod
    def sizes(self) -> Mapping[str, SizeSpec]:
        """Problem classes in increasing size order (Table III)."""

    def size(self, name: str) -> SizeSpec:
        """Look up one problem class."""
        sizes = self.sizes()
        try:
            return sizes[name]
        except KeyError:
            raise WorkloadError(
                f"{self.name} has no class {name!r}; have {list(sizes)}"
            ) from None

    # -- profile -------------------------------------------------------------

    #: Per-program knobs with conservative defaults; subclasses override.
    work_ipc: float = 1.2
    base_stall_per_instr: float = 0.35
    calibration_mode: str = "miss_volume"
    smt_work_inflation: float = 0.05
    cache_bonus: float = 0.0
    #: Memory-level parallelism (overlapped off-chip requests per stall).
    mlp: float = 4.0
    #: Channel traffic per demand miss (write-backs + prefetches).
    write_amplification: float = 1.0
    #: Fraction of accesses to cross-thread shared data (NUMA spreading).
    shared_data_fraction: float = 0.4
    #: Fraction of the working set's cold misses that appear as demand
    #: LLC misses (streaming writers with perfect prefetch see ~none:
    #: the paper counts just 1,800 misses for EP.C's 920 MB footprint).
    cold_miss_fraction: float = 1.0
    #: How strongly misses respond to LLC capacity differences
    #: (0 = insensitive, 1 = inversely proportional).
    llc_sensitivity: float = 0.5

    def profile(self, size_name: str, machine: Machine) -> MemoryProfile:
        """Materialise the counter-level profile for a class on a machine.

        The off-chip request estimate is capacity-aware: a working set
        that fits in the machine's aggregate LLC produces only its cold
        misses (one per resident line); beyond that, the class's
        streaming miss volume (``ref_misses``) phases in with the share
        of the working set that cannot be cached, shaped by the program's
        ``llc_sensitivity``.  This is what makes the paper's small
        problem classes nearly silent off-chip while the large ones
        saturate the controllers.
        """
        spec = self.size(size_name)
        llc = machine.last_level_cache_bytes
        cold_misses = spec.working_set_bytes / 64.0 * self.cold_miss_fraction
        uncached_share = max(0.0, 1.0 - llc / spec.working_set_bytes)
        if uncached_share > 0.0:
            misses = cold_misses \
                + spec.ref_misses * uncached_share ** self.llc_sensitivity
        else:
            misses = cold_misses
        if misses <= 0.0:
            # Prefetch-perfect programs (cold_miss_fraction = 0) whose
            # working set fits in cache still emit their residual demand
            # misses.
            misses = spec.ref_misses
        smt = self.smt_work_inflation if any(
            p.smt > 1 for p in machine.processors) else 0.0
        return MemoryProfile(
            program=self.name,
            size=size_name,
            instructions=spec.instructions,
            work_ipc=self.work_ipc,
            base_stall_per_instr=self.base_stall_per_instr,
            llc_misses=misses,
            burst=spec.burst,
            working_set_bytes=spec.working_set_bytes,
            calibration_mode=self.calibration_mode,
            smt_work_inflation=smt,
            cross_package_miss_growth=0.0,
            cache_bonus=self.cache_bonus,
            mlp=self.mlp,
            write_amplification=self.write_amplification,
            shared_data_fraction=self.shared_data_fraction,
        )

    # -- kernel + trace -------------------------------------------------------

    @abc.abstractmethod
    def run_kernel(self, scale: int = 1, rng=None) -> dict:
        """Run the real algorithm at reduced scale; returns result metrics.

        ``scale`` is a small integer (1..4) selecting a laptop-feasible
        problem size; the returned dict always contains a ``"checksum"``
        entry so tests can pin behaviour.
        """

    @abc.abstractmethod
    def address_trace(self, n_refs: int, rng=None, scale: int = 1) -> np.ndarray:
        """Generate ``n_refs`` byte addresses with the kernel's locality."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Workload {self.name}: {self.description}>"
