"""Parallel workloads: five NPB 3.3 dwarfs and a PARSEC x264 proxy.

Table I of the paper selects EP, IS, FT, CG and SP from NPB plus x264 from
PARSEC.  Each program here carries three faces:

1. **A real computational kernel** at laptop scale (``run_kernel``): the
   actual algorithm — Marsaglia-pair generation for EP, bucket sort for
   IS, a radix-2 3-D FFT for FT, conjugate gradient on a sparse matrix for
   CG, a pentadiagonal line solver on a 3-D grid for SP, and block-matching
   motion estimation for x264.  These validate that the access-pattern
   claims (SP touches all dimensions of a 3-D space, EP barely touches
   memory, ...) are grounded in real code.
2. **An address-trace generator** (``address_trace``): a memory reference
   stream with the kernel's locality structure, fed through the
   set-associative cache simulator to obtain off-chip miss streams.
3. **A per-class memory profile** (``profile``): the counter-level
   aggregates (instructions, LLC misses, burstiness, working set) for the
   paper's problem classes S/W/A/B/C (Table III), which the measurement
   substrate scales to full problem sizes where trace-level simulation
   would be infeasible.
"""

from repro.workloads import synthetic
from repro.workloads.base import (
    BurstProfile,
    MemoryProfile,
    SizeSpec,
    Workload,
    WorkloadError,
)
from repro.workloads.cg import CG
from repro.workloads.ep import EP
from repro.workloads.ft import FT
from repro.workloads.isort import IS
from repro.workloads.sp import SP
from repro.workloads.x264 import X264

_REGISTRY = {w.name: w for w in (EP(), IS(), FT(), CG(), SP(), X264())}


def all_workloads() -> list[Workload]:
    """The six Table I programs, in the paper's order."""
    return list(_REGISTRY.values())


def get_workload(name: str) -> Workload:
    """Look up a workload by its Table I name (e.g. ``"CG"``, ``"x264"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; have {sorted(_REGISTRY)}") from None


__all__ = [
    "BurstProfile",
    "SizeSpec",
    "MemoryProfile",
    "Workload",
    "WorkloadError",
    "EP",
    "IS",
    "FT",
    "CG",
    "SP",
    "X264",
    "all_workloads",
    "get_workload",
    "synthetic",
]
