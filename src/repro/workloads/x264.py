"""x264 — PARSEC video encoding proxy (Table I: H.264 codec).

The kernel is the dominant cost of a video encoder: block-matching motion
estimation.  For each 16x16 macroblock of a frame we search a +/-8 pixel
window of the previous frame for the minimum sum-of-absolute-differences
(SAD) match — the real algorithm on synthetic frames with translational
motion, so the search provably finds the planted motion vector.

x264's memory pattern is 2-D local (sliding windows), giving a low miss
rate even at the 400 MB ``native`` input, and its frame/slice pipeline
produces bursty traffic at every size — the paper's second example (after
EP) of a large working set *without* large contention, and one of the two
programs whose 1/C(n) colinearity is visibly below 1 in Table IV.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import resolve_rng
from repro.util.validation import ValidationError, check_integer
from repro.workloads.base import BurstProfile, SizeSpec, Workload

#: PARSEC input sets: (frames, width, height) — Table III.
_INPUTS = {
    "simsmall": (8, 640, 360),
    "simmedium": (32, 640, 360),
    "simlarge": (128, 640, 360),
    "native": (512, 1920, 1080),
}

_BURST = {
    # Frame-structured traffic stays bursty even at native size (the paper
    # groups x264.native with the low-contention, low-R^2 programs).
    "simsmall": BurstProfile(True, 1.30, 0.03, 26.0),
    "simmedium": BurstProfile(True, 1.40, 0.05, 20.0),
    "simlarge": BurstProfile(True, 1.55, 0.10, 14.0),
    "native": BurstProfile(True, 1.80, 0.30, 6.0),
}

MACROBLOCK = 16
SEARCH_RADIUS = 8


def sad(block_a: np.ndarray, block_b: np.ndarray) -> float:
    """Sum of absolute differences between two equal-shape blocks."""
    if block_a.shape != block_b.shape:
        raise ValidationError("SAD blocks must have equal shapes")
    return float(np.abs(block_a.astype(np.int64)
                        - block_b.astype(np.int64)).sum())


def motion_search(reference: np.ndarray, frame: np.ndarray,
                  block_y: int, block_x: int,
                  radius: int = SEARCH_RADIUS) -> tuple[int, int, float]:
    """Full search for the best match of one macroblock.

    Returns ``(dy, dx, best_sad)`` of the displacement in the reference
    frame minimising SAD, ties broken toward the smallest displacement
    (scan order), exactly like a full-search ME kernel.
    """
    h, w = frame.shape
    if not (0 <= block_y <= h - MACROBLOCK and 0 <= block_x <= w - MACROBLOCK):
        raise ValidationError("macroblock out of frame bounds")
    block = frame[block_y:block_y + MACROBLOCK, block_x:block_x + MACROBLOCK]
    best = (0, 0, float("inf"))
    for dy in range(-radius, radius + 1):
        ry = block_y + dy
        if ry < 0 or ry + MACROBLOCK > h:
            continue
        for dx in range(-radius, radius + 1):
            rx = block_x + dx
            if rx < 0 or rx + MACROBLOCK > w:
                continue
            cand = reference[ry:ry + MACROBLOCK, rx:rx + MACROBLOCK]
            cost = sad(block, cand)
            if cost < best[2]:
                best = (dy, dx, cost)
    return best


def encode_frames(frames: np.ndarray, radius: int = SEARCH_RADIUS,
                  block_step: int = MACROBLOCK) -> dict:
    """Motion-estimate every frame against its predecessor.

    Returns aggregate statistics: mean SAD of the best matches and the
    mean motion-vector magnitude (the "encoding" work product).
    """
    if frames.ndim != 3 or frames.shape[0] < 2:
        raise ValidationError("need a (frames, h, w) stack of >= 2 frames")
    total_sad = 0.0
    total_mv = 0.0
    n_blocks = 0
    _, h, w = frames.shape
    for t in range(1, frames.shape[0]):
        for by in range(0, h - MACROBLOCK + 1, block_step):
            for bx in range(0, w - MACROBLOCK + 1, block_step):
                dy, dx, cost = motion_search(frames[t - 1], frames[t],
                                             by, bx, radius)
                total_sad += cost
                total_mv += (dy * dy + dx * dx) ** 0.5
                n_blocks += 1
    return {
        "blocks": n_blocks,
        "mean_sad": total_sad / n_blocks,
        "mean_motion": total_mv / n_blocks,
    }


def synthetic_video(n_frames: int, h: int, w: int, shift: tuple[int, int],
                    rng=None) -> np.ndarray:
    """Frames of translating texture: frame t = frame 0 rolled by t*shift."""
    check_integer("n_frames", n_frames, minimum=2)
    rng = resolve_rng(rng)
    base = (rng.random((h, w)) * 255).astype(np.uint8)
    frames = np.empty((n_frames, h, w), dtype=np.uint8)
    for t in range(n_frames):
        frames[t] = np.roll(base, (t * shift[0], t * shift[1]), axis=(0, 1))
    return frames


class X264(Workload):
    """H.264 video encoding (PARSEC): block-matching motion estimation."""

    name = "x264"
    description = "Video encoding using H264 codec"

    work_ipc = 1.5
    base_stall_per_instr = 0.25
    calibration_mode = "none"
    smt_work_inflation = 0.08
    llc_sensitivity = 0.3
    mlp = 6.0
    write_amplification = 1.2
    shared_data_fraction = 0.50  # reference frames shared

    def sizes(self):
        specs = {}
        for name, (frames, w, h) in _INPUTS.items():
            pixels = float(frames) * w * h
            specs[name] = SizeSpec(
                name=name,
                description=f"{frames} frames at {w:,} x {h:,}".replace(
                    ",", ", "),
                working_set_bytes=min(pixels * 1.5, 400e6),
                instructions=max(600.0 * pixels, 2e9),
                ref_misses=0.004 * pixels,
                burst=_BURST[name],
            )
        return specs

    def run_kernel(self, scale: int = 1, rng=None) -> dict:
        """Encode a tiny synthetic clip; the planted motion must be found."""
        check_integer("scale", scale, minimum=1, maximum=4)
        rng = resolve_rng(rng)
        frames = synthetic_video(3, 48 * scale, 64 * scale, shift=(2, 3),
                                 rng=rng)
        stats = encode_frames(frames, radius=4)
        return {
            "frames": frames.shape,
            "mean_sad": stats["mean_sad"],
            "mean_motion": stats["mean_motion"],
            "checksum": float(stats["mean_sad"] + stats["mean_motion"]),
        }

    def address_trace(self, n_refs: int, rng=None, scale: int = 1) -> np.ndarray:
        """2-D sliding-window reads over two frame buffers."""
        check_integer("n_refs", n_refs, minimum=1)
        rng = resolve_rng(rng)
        w = 640 * scale
        h = 360 * scale
        frame_bytes = w * h
        idx = np.arange(n_refs, dtype=np.int64)
        # Walk macroblocks in raster order; within each block, touch its
        # 16x16 pixels row by row in both the current frame and the
        # reference frame (the SAD loops).
        blocks_per_row = max(w // MACROBLOCK, 1)
        block = idx // 64
        inner = idx % 64
        by = (block // blocks_per_row * MACROBLOCK) % max(h - MACROBLOCK, 1)
        bx = (block % blocks_per_row) * MACROBLOCK
        row = (inner // 4) % MACROBLOCK
        col = (inner % 4) * 4
        frame_sel = (inner // 32) * frame_bytes   # alternate frames
        addr = frame_sel + (by + row) * w + bx + col
        return addr.astype(np.int64)
