"""Command-line interface: ``python -m repro <experiment>``.

Commands
--------
``repro list``
    Show the available experiments.
``repro all [--fast]``
    Run every experiment and print the reports.
``repro <experiment> [--fast] [--seed N]``
    Run one experiment (e.g. ``repro fig5``).
``repro calibrate``
    Regenerate the shipped calibration table from the Table II anchors.
``repro topology``
    Print likwid-style topology of the three simulated testbeds.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import available_experiments, run_experiment


def _cmd_list(_args) -> int:
    print("available experiments:")
    for name in available_experiments():
        print(f"  {name}")
    return 0


def _cmd_calibrate(_args) -> int:
    import os

    from repro.runtime import calibration

    path = os.path.join(os.path.dirname(calibration.__file__),
                        "calibration_table.py")
    print(f"recomputing calibration anchors -> {path} (takes ~1 min)")
    calibration.write_table(path)
    print("done")
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import write_experiments_md

    path = "EXPERIMENTS.md"
    print(f"running every experiment and writing {path} "
          "(several minutes at full fidelity)")
    write_experiments_md(path, fast=args.fast, rng=args.seed)
    print("done")
    return 0


def _cmd_topology(_args) -> int:
    from repro.counters.likwid import TopologyMap
    from repro.machine import all_machines

    for machine in all_machines():
        print(TopologyMap(machine).render())
        print()
    return 0


def _cmd_experiment(args) -> int:
    names = available_experiments() if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        result = run_experiment(name, fast=args.fast, rng=args.seed)
        print(result.render())
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Understanding Off-chip Memory "
                    "Contention of Parallel Programs in Multicore Systems' "
                    "(ICPP 2011)")
    parser.add_argument(
        "experiment",
        help="experiment name (see 'repro list'), 'all', 'list', "
             "'calibrate', 'report' or 'topology'")
    parser.add_argument("--fast", action="store_true",
                        help="smaller sweeps / fewer samples")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the default RNG seed")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        return _cmd_list(args)
    if args.experiment == "calibrate":
        return _cmd_calibrate(args)
    if args.experiment == "report":
        return _cmd_report(args)
    if args.experiment == "topology":
        return _cmd_topology(args)
    return _cmd_experiment(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
