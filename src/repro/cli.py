"""Command-line interface: ``python -m repro <experiment>``.

Commands
--------
``repro list``
    Show the available experiments and commands.
``repro all [--fast]``
    Run every experiment and print the reports.
``repro <experiment> [--fast] [--seed N]``
    Run one experiment (e.g. ``repro fig5``).  ``repro all --jobs N`` and
    ``repro report --jobs N`` fan the experiments out over N worker
    processes with results identical to serial execution; the fan-out is
    crash-isolated (a failed experiment prints a FAILED report and exits
    1, siblings keep their results) with optional ``--retries N`` and
    ``--timeout SEC`` budgets — see docs/RESILIENCE.md.
``repro profile <experiment> [--fast]``
    Run one experiment with telemetry and the deterministic profiler on
    and print the sorted span-timing, metrics and hot-path tables.
``repro hotspots <experiment> [--fast] [--top N] [--collapsed OUT] [--flame OUT]``
    Profile one experiment and rank the hottest ``repro.*`` functions by
    exclusive time, with the subsystem taxonomy rollup.  ``--collapsed``
    writes flamegraph.pl-compatible collapsed stacks; ``--flame`` writes
    a standalone SVG flame chart.
``repro report [--fast] [--resume] [--html OUT] [--only EXP] [--from-run SPEC]``
    Run every experiment and write EXPERIMENTS.md (paper vs measured).
    ``--resume`` checkpoints completed experiments so an interrupted or
    partially failed report rerun only repeats the missing ones.
    ``--html OUT`` additionally writes the self-contained HTML fit
    report (inline-SVG charts, no external assets); with ``--only EXP``
    (repeatable) just the selected experiments run and only the HTML is
    written; ``--from-run SPEC`` renders the HTML from an archived run
    without running anything.
``repro diff [RUN_A] [RUN_B] [--store DIR]``
    Compare two archived runs (run ids, id prefixes, ``latest``,
    ``latest~N``, or run directories; default ``latest~1`` vs
    ``latest``): parameter/quality/counter drift against thresholds
    (``--drift-params`` relative, ``--drift-quality`` absolute,
    ``--drift-counters`` relative, ``--gate-wall``).  Exits nonzero on
    drift — CI-friendly.  Runs are archived with ``--archive`` on any
    experiment run (``repro fig5 --archive``).
``repro doctor [EXPERIMENT...] [--full] [--r2-floor X]``
    One-screen health report: failed experiments, solver degradations
    and non-converged solves, low-R² fits, influential fit points.
``repro calibrate``
    Regenerate the shipped calibration table from the Table II anchors.
``repro topology``
    Print likwid-style topology of the three simulated testbeds.
``repro lint [PATH] [--format text|json|github] [--baseline FILE]``
    Run the domain lint rules (see docs/LINTING.md); exits 1 on any
    error-severity finding.  ``--write-baseline`` records the current
    findings as grandfathered; ``--changed`` replays cached findings
    for unchanged files (incremental mode).
``repro serve [--port P] [--host H] [--workers N]``
    Run the contention-prediction HTTP service (docs/SERVING.md).
``repro slo [--url URL]``
    Show a running service's SLO burn rates, windowed latency and
    degraded/ok status (reads ``/healthz`` and ``/metrics``).
``repro tail [--url URL] [--top N]``
    Show a running service's recent and slowest requests with their
    span counts (reads ``/debug/requests``).

Telemetry flags (see docs/OBSERVABILITY.md)
-------------------------------------------
``--trace PATH``
    Write a Chrome trace-event JSON of the run (load in Perfetto).
``--metrics``
    Print the metrics summary table after the run.
``--manifest PATH``
    Write the structured run manifest(s) as JSON.
``--log PATH``
    Write the structured JSONL event log of the run.
``--serve-metrics PORT``
    Serve live ``/metrics``, ``/healthz`` and ``/events`` JSON endpoints
    on 127.0.0.1:PORT while the run executes (0 picks a free port).
``--version``
    Print the package version and exit.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import __version__, obs
from repro.experiments import available_experiments, run_experiment

#: Non-experiment commands, as shown by ``repro list``.
_COMMANDS: dict[str, str] = {
    "list": "show available experiments and commands",
    "all": "run every experiment",
    "profile": "run one experiment and print span/metric/hot-path summaries",
    "hotspots": "profile one experiment and rank its hottest functions",
    "report": "run everything and write EXPERIMENTS.md",
    "calibrate": "regenerate the shipped calibration table",
    "topology": "print the simulated testbed topologies",
    "lint": "run the domain lint rules (docs/LINTING.md)",
    "diff": "compare two archived runs for drift (docs/OBSERVABILITY.md)",
    "doctor": "run a health check-up and print a one-screen report",
    "serve": "run the contention-prediction HTTP service (docs/SERVING.md)",
    "slo": "show a running service's SLO burn rates and windowed latency",
    "tail": "show a running service's recent and slowest requests",
}


def _cmd_list(_args) -> int:
    print("available experiments:")
    for name in available_experiments():
        print(f"  {name}")
    print()
    print("commands:")
    for name, doc in _COMMANDS.items():
        print(f"  {name:<10} {doc}")
    return 0


def _cmd_calibrate(_args) -> int:
    import os

    from repro.runtime import calibration

    path = os.path.join(os.path.dirname(calibration.__file__),
                        "calibration_table.py")
    print(f"recomputing calibration anchors -> {path} (takes ~1 min)")
    calibration.write_table(path)
    print("done")
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import write_experiments_md

    if args.from_run is not None:
        if not args.html:
            print("usage: repro report --from-run SPEC --html OUT.html",
                  file=sys.stderr)
            return 2
        from repro.obs.htmlreport import write_html
        from repro.obs.store import RunStore, StoreError

        try:
            run = _run_store(args).load(args.from_run)
        except StoreError as exc:
            print(f"repro report: {exc}", file=sys.stderr)
            return 2
        charts = write_html(args.html, run.diagnostics, meta=run.meta)
        print(f"HTML fit report for run {run.run_id} written to "
              f"{args.html} ({charts} charts)")
        return 0

    profiler = obs.Profiler() if args.profile else None
    if profiler is not None and args.jobs > 1:
        print("repro report: --profile profiles the coordinating process "
              "only; use --jobs 1 for full attribution", file=sys.stderr)

    if args.only:
        from repro.experiments import run_experiments
        from repro.obs.htmlreport import write_html
        from repro.obs.prof import profile_payload

        if profiler is not None:
            with profiler:
                results = run_experiments(
                    args.only, fast=args.fast, rng=args.seed,
                    jobs=args.jobs, timeout_s=args.timeout,
                    retries=args.retries)
        else:
            results = run_experiments(args.only, fast=args.fast,
                                      rng=args.seed, jobs=args.jobs,
                                      timeout_s=args.timeout,
                                      retries=args.retries)
        failures = sum(1 for r in results if not r.ok)
        if args.html:
            diagnostics = {r.name: r.diagnostics for r in results
                           if r.diagnostics}
            profile = (profile_payload(profiler.report)
                       if profiler is not None and profiler.report is not None
                       else None)
            charts = write_html(args.html, diagnostics,
                                meta={"fast": args.fast,
                                      "only": ",".join(args.only)},
                                profile=profile)
            print(f"HTML fit report written to {args.html} "
                  f"({charts} charts)")
        for result in results:
            if not result.ok:
                print(result.render(), file=sys.stderr)
        return 1 if failures else 0

    path = "EXPERIMENTS.md"
    print(f"running every experiment and writing {path} "
          "(several minutes at full fidelity)")
    failures = write_experiments_md(path, fast=args.fast, rng=args.seed,
                                    jobs=args.jobs, resume=args.resume,
                                    html_path=args.html, profiler=profiler)
    if args.html:
        print(f"HTML fit report written to {args.html}")
    if failures:
        print(f"done with {failures} FAILED experiment"
              f"{'' if failures == 1 else 's'} (see {path}; rerun with "
              "--resume to retry only the failures)", file=sys.stderr)
        return 1
    print("done")
    return 0


def _run_store(args):
    """The archive for --store, defaulting to .repro/runs."""
    from repro.obs.store import RunStore

    return RunStore(args.store) if args.store else RunStore()


def _cmd_diff(args) -> int:
    from repro.obs.drift import DriftThresholds, compare_runs
    from repro.obs.store import StoreError

    specs = [s for s in [args.target, *args.extra] if s is not None]
    if len(specs) > 2:
        print("usage: repro diff [RUN_A] [RUN_B]", file=sys.stderr)
        return 2
    spec_a = specs[0] if len(specs) == 2 else "latest~1"
    spec_b = specs[-1] if specs else "latest"
    store = _run_store(args)
    try:
        run_a = store.load(spec_a)
        run_b = store.load(spec_b)
    except StoreError as exc:
        print(f"repro diff: {exc}", file=sys.stderr)
        return 2
    overrides = {
        "params_rel": args.drift_params,
        "quality_abs": args.drift_quality,
        "counters_rel": args.drift_counters,
        "gate_wall": args.gate_wall or None,
    }
    thresholds = DriftThresholds(
        **{k: v for k, v in overrides.items() if v is not None})
    report = compare_runs(run_a, run_b, thresholds)
    print(report.render())
    return report.exit_code()


def _cmd_doctor(args) -> int:
    from repro.obs.doctor import DEFAULT_R2_FLOOR, diagnose

    selected = [s for s in [args.target, *args.extra] if s is not None]
    floor = args.r2_floor if args.r2_floor is not None else DEFAULT_R2_FLOOR
    report = diagnose(selected or None, fast=not args.full, rng=args.seed,
                      jobs=args.jobs, r2_floor=floor)
    print(report.render())
    return report.exit_code()


def _cmd_lint(args) -> int:
    import os

    from repro import lintkit

    if args.target:
        targets = [args.target]
    elif os.path.isdir("src/repro"):
        targets = ["src/repro"]
    else:
        targets = None  # fall back to [tool.reprolint] paths / defaults
    config = lintkit.load_config(os.getcwd())
    report = lintkit.lint_paths(targets, config,
                                baseline_path=args.baseline,
                                incremental=args.changed)
    if args.changed:
        print(f"lint cache: {report.cache_hits} hit"
              f"{'' if report.cache_hits == 1 else 's'}, "
              f"{report.cache_misses} miss"
              f"{'' if report.cache_misses == 1 else 'es'}")
    if args.write_baseline:
        path = args.baseline or config.baseline or "lint-baseline.json"
        n = lintkit.write_baseline(report, path)
        print(f"baseline written to {path} ({n} entr"
              f"{'y' if n == 1 else 'ies'})")
        return 0
    print(lintkit.render(report, args.format))
    return report.exit_code()


def _cmd_topology(_args) -> int:
    from repro.counters.likwid import TopologyMap
    from repro.machine import all_machines

    for machine in all_machines():
        print(TopologyMap(machine).render())
        print()
    return 0


def _experiment_names(name: str) -> list[str]:
    return available_experiments() if name == "all" else [name]


def _write_telemetry(args, tel) -> None:
    """Honour --trace/--metrics/--manifest/--log after a telemetry run."""
    if args.trace:
        tel.tracer.write_chrome_trace(args.trace)
        print(f"chrome trace written to {args.trace} "
              "(open in Perfetto or chrome://tracing)")
    if args.log:
        n = tel.log.write_jsonl(args.log)
        print(f"structured log written to {args.log} ({n} event"
              f"{'' if n == 1 else 's'})")
    if args.manifest:
        records = [m.to_dict() for m in tel.manifests]
        payload = records[0] if len(records) == 1 else records
        with open(args.manifest, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"run manifest written to {args.manifest}")
    if args.metrics:
        print()
        print(obs.render_summary(tel))


def _cmd_experiment(args) -> int:
    from repro.experiments import run_experiments

    telemetry_wanted = bool(args.trace or args.metrics or args.manifest
                            or args.archive or args.log
                            or args.serve_metrics is not None)
    if telemetry_wanted:
        obs.enable(fresh=True)
    server = None
    if args.serve_metrics is not None:
        server = obs.MetricsServer(port=args.serve_metrics)
        server.start()
        print(f"live metrics at {server.url}/metrics "
              f"(health: {server.url}/healthz)")
    names = _experiment_names(args.experiment)
    failures = 0
    try:
        results = run_experiments(names, fast=args.fast, rng=args.seed,
                                  jobs=args.jobs, timeout_s=args.timeout,
                                  retries=args.retries)
    finally:
        if server is not None:
            server.stop()
    for result in results:
        print(result.render())
        print()
        if not result.ok:
            failures += 1
    if args.archive:
        from repro.obs.store import DEFAULT_KEEP

        store = _run_store(args)
        run_id = store.archive(
            results, obs.session(), fast=args.fast, seed=args.seed,
            keep=args.keep if args.keep is not None else DEFAULT_KEEP,
            trace=bool(args.trace))
        print(f"run archived as {run_id} under {store.root} "
              "(compare with 'repro diff')")
    if telemetry_wanted:
        _write_telemetry(args, obs.session())
    return 1 if failures else 0


def _profiled_run(names: list[str], fast: bool, rng):
    """One profiled, telemetry-enabled run shared by profile/hotspots.

    The solve stack is imported up front so the profile attributes time
    to solving, not to first-touch module imports, then every experiment
    runs serially under one :class:`repro.obs.Profiler`.
    """
    import repro.experiments.runner  # noqa: F401  (pre-import: attribution)
    import repro.qnet.mva  # noqa: F401
    import repro.runtime.flow  # noqa: F401

    tel = obs.enable(fresh=True)
    results = []
    with obs.Profiler() as profiler:
        for name in names:
            results.append(run_experiment(name, fast=fast, rng=rng))
    return tel, profiler.report, results


def _cmd_profile(args) -> int:
    if not args.target:
        print("usage: repro profile <experiment> [--fast]", file=sys.stderr)
        return 2
    tel, report, results = _profiled_run(_experiment_names(args.target),
                                         args.fast, args.seed)
    for result in results:
        footer = result.timing_footer()
        print(f"== profile: {result.name} =="
              f"{'  [' + footer + ']' if footer else ''}")
    print()
    print(obs.render_summary(tel, report, top=args.top))
    _write_telemetry(argparse.Namespace(trace=args.trace, metrics=False,
                                        manifest=args.manifest,
                                        log=args.log), tel)
    return 0


def _cmd_hotspots(args) -> int:
    if not args.target:
        print("usage: repro hotspots <experiment> [--fast] [--top N] "
              "[--collapsed OUT] [--flame OUT]", file=sys.stderr)
        return 2
    _, report, _ = _profiled_run(_experiment_names(args.target),
                                 args.fast, args.seed)
    print(obs.render_hotspots(report, top=args.top))
    if args.collapsed:
        n = report.write_collapsed(args.collapsed)
        print(f"collapsed stacks written to {args.collapsed} "
              f"({n} line{'' if n == 1 else 's'}; feed to flamegraph.pl)")
    if args.flame:
        from repro.obs.htmlreport import flame_svg

        with open(args.flame, "w", encoding="utf-8") as fh:
            fh.write(flame_svg(report.flame_tree()) + "\n")
        print(f"flame chart written to {args.flame}")
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import PredictionServer

    # The service is a telemetry surface by construction: /metrics and
    # the cache hit-rate gauges only exist with an enabled session.
    if not obs.enabled():
        obs.enable()
    server = PredictionServer(host=args.host, port=args.port,
                              workers=args.workers)
    try:
        import asyncio

        asyncio.run(_announce_and_serve(server))
    except KeyboardInterrupt:
        print("\nrepro serve: stopped")
    return 0


async def _announce_and_serve(server) -> None:
    await server.start()
    print(f"repro serve listening on {server.url}")
    print("  POST /predict         one (machine, workload, allocation) cell")
    print("  POST /recommend       minimum-slowdown core allocation")
    print("  GET  /metrics         telemetry snapshot + rolling windows")
    print("  GET  /healthz         liveness + SLO burn-rate state")
    print("  GET  /events          structured-log ring")
    print("  GET  /debug/requests  recent/slowest requests with span trees")
    print("  GET  /dashboard       script-free inline-SVG live dashboard")
    try:
        await server._server.serve_forever()
    finally:
        await server.stop()


def _service_url(args) -> str:
    if args.url:
        return args.url.rstrip("/")
    return f"http://{args.host}:{args.port}"


def _fetch_service_json(url: str, timeout_s: float = 5.0):
    """GET a JSON payload from a running service; ``None`` on refusal.

    HTTP error statuses still carry JSON payloads (the service's error
    contract), so they parse and return; only transport-level failures
    (refused, timeout) return ``None``.
    """
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            return json.loads(exc.read().decode("utf-8"))
        except (ValueError, OSError):
            return None
    except (urllib.error.URLError, OSError, ValueError):
        return None


def _cmd_slo(args) -> int:
    base = _service_url(args)
    healthz = _fetch_service_json(base + "/healthz")
    if healthz is None:
        print(f"repro slo: no service answering at {base}", file=sys.stderr)
        return 2
    slo = healthz.get("slo")
    if slo is None:
        print(f"repro slo: the service at {base} predates the SLO schema "
              "(no 'slo' block on /healthz); upgrade the server",
              file=sys.stderr)
        return 2
    print(f"service {base} — status: {healthz['status']} "
          f"(uptime {healthz.get('uptime_s', 0):.0f}s)")
    print()
    print(f"{'objective':<14} {'kind':<13} {'target':>8} {'status':>9} "
          f"{'burn 1m':>8} {'burn 5m':>8} {'burn 1h':>8} {'bad/total 1h':>14}")
    for name in sorted(slo["objectives"]):
        obj = slo["objectives"][name]
        win = obj["windows"]
        hour = win["1h"]
        print(f"{name:<14} {obj['kind']:<13} {obj['target']:>8.4g} "
              f"{obj['status']:>9} {win['1m']['burn_rate']:>8.2f} "
              f"{win['5m']['burn_rate']:>8.2f} {hour['burn_rate']:>8.2f} "
              f"{hour['bad']:>6}/{hour['total']}")
    print()
    print(f"degraded = burn >= {slo['fast_burn_threshold']:g} on both the "
          "1m and 5m windows")
    metrics = _fetch_service_json(base + "/metrics")
    windows = (metrics or {}).get("windows")
    if windows:
        for label, title in (("fast", "last 60s"), ("slow", "last 60m")):
            block = windows[label]
            lat = block["window.latency_seconds"]
            req = block["window.requests"]
            err = block["window.errors"]
            if not lat["count"]:
                print(f"{title}: no requests")
                continue
            print(f"{title}: {req['total']} requests "
                  f"({req['rate_per_s']:.1f}/s), "
                  f"error rate {err['error_rate'] * 100:.2f}%, "
                  f"p50 {lat['p50'] * 1e3:.2f}ms "
                  f"p95 {lat['p95'] * 1e3:.2f}ms "
                  f"p99 {lat['p99'] * 1e3:.2f}ms")
    else:
        print("windowed latency unavailable "
              "(telemetry disabled or pre-window server)")
    return 0


def _cmd_tail(args) -> int:
    base = _service_url(args)
    payload = _fetch_service_json(
        base + f"/debug/requests?limit={max(args.top, 1)}")
    if payload is None:
        print(f"repro tail: no service answering at {base}", file=sys.stderr)
        return 2
    if "recent" not in payload:
        print(f"repro tail: the service at {base} has no /debug/requests "
              "surface; upgrade the server", file=sys.stderr)
        return 2
    print(f"service {base} — {payload['total']} requests seen, "
          f"ring capacity {payload['capacity']}")
    for title, key in (("recent", "recent"), ("slowest", "slowest")):
        entries = payload.get(key, [])
        print()
        print(f"{title} ({len(entries)}):")
        print(f"  {'request id':<18} {'method':<7} {'path':<18} "
              f"{'status':>6} {'ms':>9} {'spans':>6}")
        for entry in entries:
            spans = _span_count(entry.get("trace"))
            print(f"  {entry['request_id']:<18} {entry['method']:<7} "
                  f"{entry['path']:<18} {entry['status']:>6} "
                  f"{entry['duration_s'] * 1e3:>9.2f} "
                  f"{spans if spans else '-':>6}")
    return 0


def _span_count(trace) -> int:
    if not trace:
        return 0
    return 1 + sum(_span_count(c) for c in trace.get("children", ()))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Understanding Off-chip Memory "
                    "Contention of Parallel Programs in Multicore Systems' "
                    "(ICPP 2011)")
    parser.add_argument(
        "experiment",
        help="experiment name (see 'repro list'), 'all', or a command: "
             + ", ".join(f"'{c}'" for c in _COMMANDS))
    parser.add_argument(
        "target", nargs="?", default=None,
        help="experiment name for 'repro profile/hotspots <experiment>', "
             "the path to scan for 'repro lint [PATH]', or the first run "
             "spec for 'repro diff'")
    parser.add_argument(
        "extra", nargs="*", default=[],
        help="second run spec for 'repro diff A B', or further "
             "experiment names for 'repro doctor'")
    parser.add_argument("--fast", action="store_true",
                        help="smaller sweeps / fewer samples")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the default RNG seed")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run experiments in N worker processes "
                             "(results identical to serial; see "
                             "docs/PERFORMANCE.md)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="extra attempts a failed experiment gets in "
                             "--jobs runs (see docs/RESILIENCE.md)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-experiment wall-clock budget in --jobs "
                             "runs (see docs/RESILIENCE.md)")
    parser.add_argument("--resume", action="store_true",
                        help="for 'repro report': checkpoint completed "
                             "experiments and restore them on rerun")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON (Perfetto)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics summary after the run")
    parser.add_argument("--manifest", metavar="PATH", default=None,
                        help="write the structured run manifest JSON")
    parser.add_argument("--log", metavar="PATH", default=None,
                        help="write the structured JSONL event log")
    parser.add_argument("--serve-metrics", type=int, default=None,
                        metavar="PORT", dest="serve_metrics",
                        help="serve live /metrics and /healthz JSON on "
                             "127.0.0.1:PORT during the run (0 = any free "
                             "port)")
    parser.add_argument("--top", type=int, default=15, metavar="N",
                        help="rows in the 'repro profile'/'repro hotspots' "
                             "hot-path table (default 15)")
    parser.add_argument("--collapsed", metavar="PATH", default=None,
                        help="'repro hotspots': write flamegraph.pl-"
                             "compatible collapsed stacks")
    parser.add_argument("--flame", metavar="PATH", default=None,
                        help="'repro hotspots': write a standalone SVG "
                             "flame chart")
    parser.add_argument("--profile", action="store_true",
                        help="'repro report --html': run under the profiler "
                             "and include the flame-chart section")
    parser.add_argument("--archive", action="store_true",
                        help="archive the run (manifest, metrics, fit "
                             "diagnostics) under --store for 'repro diff'")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="run-archive directory (default .repro/runs)")
    parser.add_argument("--keep", type=int, default=None, metavar="N",
                        help="archived runs retained before pruning "
                             "(default 50)")
    parser.add_argument("--html", metavar="PATH", default=None,
                        help="for 'repro report': write the self-contained "
                             "HTML fit report (inline SVG, no assets)")
    parser.add_argument("--only", action="append", metavar="EXP",
                        default=None,
                        help="for 'repro report --html': run only this "
                             "experiment (repeatable); skips EXPERIMENTS.md")
    parser.add_argument("--from-run", metavar="SPEC", default=None,
                        help="for 'repro report --html': render from an "
                             "archived run instead of running experiments")
    parser.add_argument("--drift-params", type=float, default=None,
                        metavar="REL",
                        help="'repro diff' relative threshold for fitted "
                             "parameters (default 1e-3)")
    parser.add_argument("--drift-quality", type=float, default=None,
                        metavar="ABS",
                        help="'repro diff' absolute threshold for R²/error "
                             "statistics (default 1e-3)")
    parser.add_argument("--drift-counters", type=float, default=None,
                        metavar="REL",
                        help="'repro diff' relative threshold for work "
                             "counters (default 0.25)")
    parser.add_argument("--gate-wall", action="store_true",
                        help="'repro diff': gate on wall-clock drift too")
    parser.add_argument("--full", action="store_true",
                        help="'repro doctor': full-fidelity sweeps instead "
                             "of fast mode")
    parser.add_argument("--r2-floor", type=float, default=None, metavar="X",
                        help="'repro doctor': flag fits with R² below X "
                             "(default 0.8)")
    parser.add_argument("--format", default="text", metavar="FMT",
                        choices=("text", "json", "github"),
                        help="lint report format: text, json or github "
                             "(workflow annotations)")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="lint baseline file overriding "
                             "[tool.reprolint] baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current lint findings as the baseline "
                             "instead of failing on them")
    parser.add_argument("--changed", action="store_true",
                        help="lint incrementally: replay cached findings "
                             "for unchanged files (.repro/lintcache.json)")
    parser.add_argument("--port", type=int, default=8321, metavar="PORT",
                        help="'repro serve': listen port (default 8321; "
                             "0 = any free port)")
    parser.add_argument("--host", default="127.0.0.1", metavar="HOST",
                        help="'repro serve': bind address (default "
                             "loopback)")
    parser.add_argument("--workers", type=int, default=4, metavar="N",
                        help="'repro serve': solver worker threads "
                             "(default 4)")
    parser.add_argument("--url", default=None, metavar="URL",
                        help="'repro slo'/'repro tail': base URL of the "
                             "running service (default http://HOST:PORT "
                             "from --host/--port)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    # intermixed: options may appear between the positionals, e.g.
    # ``repro lint --format json src/repro``.
    args = parser.parse_intermixed_args(argv)

    if args.experiment == "list":
        return _cmd_list(args)
    if args.experiment == "calibrate":
        return _cmd_calibrate(args)
    if args.experiment == "report":
        return _cmd_report(args)
    if args.experiment == "topology":
        return _cmd_topology(args)
    if args.experiment == "profile":
        return _cmd_profile(args)
    if args.experiment == "hotspots":
        return _cmd_hotspots(args)
    if args.experiment == "lint":
        return _cmd_lint(args)
    if args.experiment == "diff":
        return _cmd_diff(args)
    if args.experiment == "doctor":
        return _cmd_doctor(args)
    if args.experiment == "serve":
        return _cmd_serve(args)
    if args.experiment == "slo":
        return _cmd_slo(args)
    if args.experiment == "tail":
        return _cmd_tail(args)
    return _cmd_experiment(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
