"""Small statistics helpers used across measurement and validation code.

Includes the two accuracy metrics the paper reports — per-point relative
error and the R-squared of the 1/C(n) linearity (Table IV) — plus an online
running-statistics accumulator for discrete-event monitors.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.util.validation import ValidationError, check_positive


class RunningStats:
    """Welford online accumulator for mean/variance of a stream of samples.

    Used by discrete-event monitors where storing every sample would be
    prohibitive.  Numerically stable for long streams.
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample into the accumulator."""
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def extend(self, xs: Sequence[float]) -> None:
        """Fold a batch of samples into the accumulator."""
        for x in xs:
            self.add(x)

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValidationError("RunningStats.mean undefined with no samples")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample (n-1) variance."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._n == 0:
            raise ValidationError("RunningStats.minimum undefined with no samples")
        return self._min

    @property
    def maximum(self) -> float:
        if self._n == 0:
            raise ValidationError("RunningStats.maximum undefined with no samples")
        return self._max


def mean_confidence_interval(samples: Sequence[float],
                             confidence: float = 0.95) -> tuple[float, float]:
    """Return ``(mean, half_width)`` of a normal-approximation CI.

    The paper averages five runs per configuration; this mirrors that
    reporting.  With fewer than two samples the half width is zero.
    """
    xs = np.asarray(samples, dtype=float)
    if xs.size == 0:
        raise ValidationError("mean_confidence_interval requires samples")
    mean = float(xs.mean())
    if xs.size < 2:
        return mean, 0.0
    # Normal quantile via scipy-free approximation is unnecessary; scipy is a
    # declared dependency.
    from scipy import stats as _st

    sem = float(xs.std(ddof=1)) / math.sqrt(xs.size)
    q = float(_st.t.ppf(0.5 + confidence / 2.0, df=xs.size - 1))
    return mean, q * sem


def relative_error(predicted: float, measured: float) -> float:
    """|predicted - measured| / |measured|.

    ``measured`` must be non-zero; the paper always normalises against a
    measured quantity that is a positive cycle count.
    """
    if measured == 0:
        raise ValidationError("relative_error undefined for measured == 0")
    return abs(predicted - measured) / abs(measured)


def mean_relative_error(predicted: Sequence[float],
                        measured: Sequence[float]) -> float:
    """Average relative error across paired points (the paper's 5-14% metric)."""
    p = np.asarray(predicted, dtype=float)
    m = np.asarray(measured, dtype=float)
    if p.shape != m.shape or p.size == 0:
        raise ValidationError("predicted and measured must be equal-length, non-empty")
    if np.any(m == 0):
        raise ValidationError("measured values must be non-zero")
    return float(np.mean(np.abs(p - m) / np.abs(m)))


def r_squared(y: Sequence[float], y_fit: Sequence[float]) -> float:
    """Coefficient of determination of a fit.

    Defined as ``1 - SS_res / SS_tot``.  When the response is constant
    (``SS_tot == 0``) the fit is perfect iff the residuals are zero; we
    return 1.0 in that case and 0.0 otherwise, matching common practice.
    """
    ya = np.asarray(y, dtype=float)
    fa = np.asarray(y_fit, dtype=float)
    if ya.shape != fa.shape or ya.size == 0:
        raise ValidationError("y and y_fit must be equal-length, non-empty")
    ss_res = float(np.sum((ya - fa) ** 2))
    ss_tot = float(np.sum((ya - ya.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def geometric_mean(xs: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(xs, dtype=float)
    if arr.size == 0:
        raise ValidationError("geometric_mean requires samples")
    if np.any(arr <= 0):
        raise ValidationError("geometric_mean requires positive samples")
    return float(np.exp(np.mean(np.log(arr))))


def coefficient_of_variation(xs: Sequence[float]) -> float:
    """Std/mean of the samples; the burstiness metrics build on this."""
    arr = np.asarray(xs, dtype=float)
    if arr.size < 2:
        raise ValidationError("coefficient_of_variation requires >= 2 samples")
    mean = float(arr.mean())
    check_positive("mean", mean)
    return float(arr.std(ddof=1)) / mean
