"""Argument validation helpers.

Every public constructor and function in the library validates its inputs
through these helpers so error messages are uniform (``name=value`` plus the
violated constraint) and so tests can assert on a single exception type.
"""

from __future__ import annotations

import math
from typing import Collection, Iterable, NoReturn, Sequence, TypeVar

from repro.util.errors import ReproError

_T = TypeVar("_T")
_SeqT = TypeVar("_SeqT", bound=Sequence)


class ValidationError(ReproError, ValueError):
    """Raised when a function argument violates its documented contract.

    Part of the structured taxonomy (see docs/RESILIENCE.md): still a
    ``ValueError`` for backward compatibility, but also a
    :class:`repro.util.errors.ReproError` carrying a machine-readable
    ``code`` and optional context.
    """

    code = "validation.invalid_argument"


def _fail(name: str, value: object, constraint: str) -> NoReturn:
    raise ValidationError(f"{name}={value!r} violates: {constraint}",
                          argument=name, constraint=constraint)


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number strictly greater than zero."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(name, value, "must be a real number")
    if not math.isfinite(value) or value <= 0:
        _fail(name, value, "must be finite and > 0")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Return ``value`` if it is a finite number greater than or equal to zero."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(name, value, "must be a real number")
    if not math.isfinite(value) or value < 0:
        _fail(name, value, "must be finite and >= 0")
    return value


def check_integer(name: str, value: int, minimum: int | None = None,
                  maximum: int | None = None) -> int:
    """Return ``value`` if it is an ``int`` within ``[minimum, maximum]``."""
    if isinstance(value, bool) or not isinstance(value, int):
        _fail(name, value, "must be an integer")
    if minimum is not None and value < minimum:
        _fail(name, value, f"must be >= {minimum}")
    if maximum is not None and value > maximum:
        _fail(name, value, f"must be <= {maximum}")
    return value


def check_in_range(name: str, value: float, low: float, high: float,
                   inclusive: bool = True) -> float:
    """Return ``value`` if it lies in ``[low, high]`` (or ``(low, high)``)."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(name, value, "must be a real number")
    if not math.isfinite(value):
        _fail(name, value, "must be finite")
    if inclusive:
        if not (low <= value <= high):
            _fail(name, value, f"must be in [{low}, {high}]")
    else:
        if not (low < value < high):
            _fail(name, value, f"must be in ({low}, {high})")
    return value


def check_probability(name: str, value: float) -> float:
    """Return ``value`` if it is a probability in ``[0, 1]``."""
    return check_in_range(name, value, 0.0, 1.0, inclusive=True)


def check_fraction_open(name: str, value: float) -> float:
    """Return ``value`` if it lies strictly inside ``(0, 1)``.

    Used for utilisations that must leave a stable queue (rho < 1) and
    non-degenerate mixtures.
    """
    return check_in_range(name, value, 0.0, 1.0, inclusive=False)


def check_sorted_unique(name: str, values: _SeqT) -> _SeqT:
    """Return ``values`` if they are strictly increasing."""
    for a, b in zip(values, list(values)[1:]):
        if not a < b:
            _fail(name, list(values), "must be strictly increasing")
    return values


def check_nonempty(name: str, values: Iterable[_T]) -> Collection[_T]:
    """Return ``values`` (materialised if it was a lazy iterable) if the
    collection has at least one element."""
    if not isinstance(values, Collection):
        values = list(values)
    if len(values) == 0:
        _fail(name, values, "must be non-empty")
    return values
