"""Random-number policy.

Every stochastic component accepts either ``None`` (use the library default
seed so experiments are reproducible run-to-run), an integer seed, or an
already-constructed :class:`numpy.random.Generator`.  Components that need
several independent streams spawn children so that changing the number of
consumers does not perturb unrelated streams.
"""

from __future__ import annotations

import numpy as np

#: Default seed for all experiments.  Chosen arbitrarily; fixing it makes
#: ``python -m repro <experiment>`` bit-reproducible.
DEFAULT_SEED = 20110913  # ICPP 2011 conference date


def resolve_rng(rng: "np.random.Generator | int | None" = None) -> np.random.Generator:
    """Normalise a seed-or-generator argument to a Generator.

    ``None`` maps to :data:`DEFAULT_SEED` (not to OS entropy) — experiment
    outputs must be stable across invocations.
    """
    if rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, an int seed or a Generator, got {type(rng)!r}")


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent child generators."""
    if n < 0:
        raise ValueError("n must be >= 0")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
