"""Shared utilities: argument validation, units, statistics, RNG policy, tables.

These helpers are deliberately dependency-light (NumPy only) and are used by
every other subpackage.  Nothing here is specific to the paper; it is plumbing
that keeps the domain modules small and uniform.
"""

from repro.util.validation import (
    check_positive,
    check_nonnegative,
    check_in_range,
    check_integer,
    check_probability,
    check_fraction_open,
    check_sorted_unique,
    ValidationError,
)
from repro.util.units import (
    Frequency,
    cycles_to_seconds,
    seconds_to_cycles,
    ns_to_cycles,
    cycles_to_ns,
    GIGA,
    MICRO,
    NANO,
)
from repro.util.stats import (
    RunningStats,
    mean_confidence_interval,
    relative_error,
    mean_relative_error,
    r_squared,
    geometric_mean,
    coefficient_of_variation,
)
from repro.util.rng import resolve_rng, spawn_rng, DEFAULT_SEED
from repro.util.tables import TextTable, format_float, format_sci

__all__ = [
    "ValidationError",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_integer",
    "check_probability",
    "check_fraction_open",
    "check_sorted_unique",
    "Frequency",
    "cycles_to_seconds",
    "seconds_to_cycles",
    "ns_to_cycles",
    "cycles_to_ns",
    "GIGA",
    "MICRO",
    "NANO",
    "RunningStats",
    "mean_confidence_interval",
    "relative_error",
    "mean_relative_error",
    "r_squared",
    "geometric_mean",
    "coefficient_of_variation",
    "resolve_rng",
    "spawn_rng",
    "DEFAULT_SEED",
    "TextTable",
    "format_float",
    "format_sci",
]
