"""Shared utilities: argument validation, units, statistics, RNG policy, tables.

These helpers are deliberately dependency-light (NumPy only) and are used by
every other subpackage.  Nothing here is specific to the paper; it is plumbing
that keeps the domain modules small and uniform.
"""

from repro.util.rng import DEFAULT_SEED, resolve_rng, spawn_rng
from repro.util.stats import (
    RunningStats,
    coefficient_of_variation,
    geometric_mean,
    mean_confidence_interval,
    mean_relative_error,
    r_squared,
    relative_error,
)
from repro.util.tables import TextTable, format_float, format_sci
from repro.util.units import (
    GIGA,
    MICRO,
    NANO,
    Frequency,
    cycles_to_ns,
    cycles_to_seconds,
    ns_to_cycles,
    seconds_to_cycles,
)
from repro.util.validation import (
    ValidationError,
    check_fraction_open,
    check_in_range,
    check_integer,
    check_nonnegative,
    check_positive,
    check_probability,
    check_sorted_unique,
)

__all__ = [
    "ValidationError",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_integer",
    "check_probability",
    "check_fraction_open",
    "check_sorted_unique",
    "Frequency",
    "cycles_to_seconds",
    "seconds_to_cycles",
    "ns_to_cycles",
    "cycles_to_ns",
    "GIGA",
    "MICRO",
    "NANO",
    "RunningStats",
    "mean_confidence_interval",
    "relative_error",
    "mean_relative_error",
    "r_squared",
    "geometric_mean",
    "coefficient_of_variation",
    "resolve_rng",
    "spawn_rng",
    "DEFAULT_SEED",
    "TextTable",
    "format_float",
    "format_sci",
]
