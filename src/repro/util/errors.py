"""The root of the structured error taxonomy: :class:`ReproError`.

Every exception the library raises on purpose derives from this base, so
callers can catch one type, and every error carries a machine-readable
``code`` (a stable dotted identifier) plus a ``context`` mapping of the
values that triggered it.  The full taxonomy — validation, model, solver
and experiment failures — is assembled and documented in
:mod:`repro.resilience.errors` (see docs/RESILIENCE.md); only the base
lives here so that low-level modules (:mod:`repro.util.validation`) can
subclass it without importing the resilience layer.

Errors are picklable with their context intact: structured failures
cross process boundaries when a worker of the parallel experiment
runner raises.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base of all library errors.

    Attributes
    ----------
    code:
        Stable dotted identifier of the failure kind (e.g.
        ``"solver.nonconverged"``); class-level default, overridable per
        instance via the ``code=`` keyword.
    context:
        The values that triggered the failure (``name=value`` keywords
        at the raise site), for programmatic inspection and logging.
    """

    code: str = "repro.error"

    def __init__(self, message: str, *, code: str | None = None,
                 **context: Any) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        self.context: dict[str, Any] = context

    @property
    def message(self) -> str:
        return str(self.args[0]) if self.args else ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready record: code, message, type and context.

        Context values that do not serialise are replaced by their
        ``repr`` so the record never fails to dump.
        """
        import json

        context: dict[str, Any] = {}
        for key, value in self.context.items():
            try:
                json.dumps(value)
                context[key] = value
            except (TypeError, ValueError):
                context[key] = repr(value)
        return {
            "code": self.code,
            "message": self.message,
            "type": type(self).__qualname__,
            "context": context,
        }

    def __reduce__(self):
        # Default Exception pickling calls ``cls(*args)`` and drops the
        # keyword-only context; restore the instance dict explicitly so
        # structured errors survive the worker -> parent hop.
        return (_rebuild, (type(self), self.message), self.__dict__)


def _rebuild(cls: type, message: str) -> "ReproError":
    """Unpickle helper: rebuild without re-running subclass validation."""
    err = ReproError.__new__(cls)
    Exception.__init__(err, message)
    err.context = {}
    return err
