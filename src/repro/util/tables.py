"""Plain-text table rendering for experiment reports.

The benchmark harness prints each paper table/figure as an aligned ASCII
table so the reproduction can be eyeballed against the paper without any
plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

from repro.util.validation import ValidationError


def format_float(x: float, digits: int = 2) -> str:
    """Fixed-point format used for contention degrees and ratios."""
    return f"{x:.{digits}f}"


def format_sci(x: float, digits: int = 2) -> str:
    """Scientific format used for raw cycle counts (1e11-scale values)."""
    return f"{x:.{digits}e}"


class TextTable:
    """An aligned monospace table.

    >>> t = TextTable(["program", "omega"])
    >>> t.add_row(["CG.C", "3.31"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    program | omega
    --------+------
    CG.C    | 3.31
    """

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        if not headers:
            raise ValidationError("headers must be non-empty")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Sequence[object]) -> None:
        """Append a row; cells are stringified, count must match headers."""
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValidationError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns")
        self.rows.append(row)

    def render(self) -> str:
        """Render the table to a string (no trailing newline)."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.headers))
        lines.append(sep)
        lines.extend(fmt(r) for r in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
