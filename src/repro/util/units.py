"""Unit conversions between cycles, wall-clock time and clock frequency.

The paper reports everything in processor cycles (PAPI_TOT_CYC), while the
fine-grained burst sampler works in wall-clock windows of five microseconds.
A :class:`Frequency` ties the two together for each simulated machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive

GIGA: float = 1e9
MEGA: float = 1e6
KILO: float = 1e3
MILLI: float = 1e-3
MICRO: float = 1e-6
NANO: float = 1e-9


@dataclass(frozen=True)
class Frequency:
    """A processor clock frequency.

    Parameters
    ----------
    hz:
        Frequency in Hertz, must be positive.
    """

    hz: float

    def __post_init__(self) -> None:
        check_positive("hz", self.hz)

    @classmethod
    def ghz(cls, value: float) -> "Frequency":
        """Construct from gigahertz (e.g. ``Frequency.ghz(2.66)``)."""
        return cls(check_positive("value", value) * GIGA)

    @classmethod
    def mhz(cls, value: float) -> "Frequency":
        """Construct from megahertz."""
        return cls(check_positive("value", value) * MEGA)

    @property
    def period_s(self) -> float:
        """Duration of one cycle in seconds."""
        return 1.0 / self.hz

    @property
    def period_ns(self) -> float:
        """Duration of one cycle in nanoseconds."""
        return self.period_s / NANO

    def cycles_in(self, seconds: float) -> float:
        """Number of cycles elapsed in ``seconds`` of wall-clock time."""
        return seconds * self.hz

    def seconds_for(self, cycles: float) -> float:
        """Wall-clock seconds needed for ``cycles`` cycles."""
        return cycles / self.hz

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.hz / GIGA:.2f} GHz"


def cycles_to_seconds(cycles: float, freq: Frequency) -> float:
    """Convert a cycle count to seconds at clock ``freq``."""
    return freq.seconds_for(cycles)


def seconds_to_cycles(seconds: float, freq: Frequency) -> float:
    """Convert seconds to a cycle count at clock ``freq``."""
    return freq.cycles_in(seconds)


def ns_to_cycles(ns: float, freq: Frequency) -> float:
    """Convert nanoseconds to cycles at clock ``freq``."""
    return freq.cycles_in(ns * NANO)


def cycles_to_ns(cycles: float, freq: Frequency) -> float:
    """Convert cycles to nanoseconds at clock ``freq``."""
    return freq.seconds_for(cycles) / NANO
