"""Calibration of workload intensity to the paper's Table II anchors.

The reproduction cannot rerun NPB on the authors' silicon, so a small
number of scalars are anchored, per (program, class, machine), to the
paper's measured contention (Table II reports the normalized cycle
increase at half and at full core count):

* ``miss_volume`` programs (IS, FT, CG, SP)

  - on the **UMA** machine, the off-chip request count ``r`` is bisected
    so the noise-free flow model's ``omega(n_max)`` matches the full-core
    anchor (the UMA staircase shape then emerges from the bus/controller
    topology);
  - on **NUMA** machines, *both* anchors are used: ``r`` pins
    ``omega(half)`` and the workload's ``remote_penalty`` (coherence cost
    of remote accesses) pins ``omega(full)``.  On Intel NUMA the split is
    exact — half the machine is one package, which never touches the
    interconnect — and on AMD the remote share still roughly doubles from
    half to full, so the nested bisection is well-conditioned.

* ``miss_growth`` programs (EP): the cross-package miss inflation ``g``
  is bisected against the full-core anchor, keeping the tiny
  single-package miss count from the profile (the paper: 1,800 misses at
  one core growing to 3.1e7 at 24 cores);

* ``none`` programs (x264): used as profiled.

Everything else — the per-processor growth staircases, the contention
relief when a new controller comes online, the intermediate curve points,
the analytical model's fit error — is emergent, not fitted.

Calibration is pure but slow (seconds per triple), so results ship as a
precomputed table (:mod:`repro.runtime.calibration_table`, regenerated
with ``python -m repro calibrate``) and fall back to live computation for
entries that are missing or stale.
"""

from __future__ import annotations

import functools
import math

from repro import obs
from repro.machine.allocation import CoreAllocation
from repro.machine.topology import Machine, MemoryArchitecture
from repro.obs import names as _names
from repro.runtime.flow import solve_flow
from repro.util.validation import ValidationError
from repro.workloads import get_workload
from repro.workloads.base import MemoryProfile


class CalibrationError(ValidationError):
    """Raised when a Table II anchor cannot be matched."""


#: Table II of the paper: normalized increase in cycles (== omega) at half
#: and full core counts.  Key: (program, class, machine key) -> (half, full).
#: On Intel UMA the paper substitutes FT.B for FT.C (FT.C swaps in 4 GB).
TABLE2: dict[tuple[str, str, str], tuple[float, float]] = {
    ("EP", "W", "intel_uma"): (0.00, 0.00),
    ("EP", "W", "intel_numa"): (0.03, 0.57),
    ("EP", "W", "amd_numa"): (0.01, 0.59),
    ("IS", "W", "intel_uma"): (0.10, 0.57),
    ("IS", "W", "intel_numa"): (0.33, 0.33),
    ("IS", "W", "amd_numa"): (0.21, 0.44),
    ("FT", "W", "intel_uma"): (0.32, 0.58),
    ("FT", "W", "intel_numa"): (0.18, 0.34),
    ("FT", "W", "amd_numa"): (0.11, 0.23),
    ("CG", "W", "intel_uma"): (0.01, 0.04),
    ("CG", "W", "intel_numa"): (0.10, 0.43),
    ("CG", "W", "amd_numa"): (0.11, 0.13),
    ("SP", "W", "intel_uma"): (0.32, 0.58),
    ("SP", "W", "intel_numa"): (0.10, 0.50),
    ("SP", "W", "amd_numa"): (0.13, 0.21),
    ("EP", "C", "intel_uma"): (0.00, 0.00),
    ("EP", "C", "intel_numa"): (0.01, 0.54),
    ("EP", "C", "amd_numa"): (0.06, 0.55),
    ("IS", "C", "intel_uma"): (0.07, 0.56),
    ("IS", "C", "intel_numa"): (0.26, 0.85),
    ("IS", "C", "amd_numa"): (0.40, 0.70),
    ("FT", "B", "intel_uma"): (0.70, 1.80),
    ("FT", "B", "intel_numa"): (1.30, 3.20),  # Table IV profiles FT.B on
    ("FT", "B", "amd_numa"): (0.31, 0.37),    # NUMA too; anchors scaled
    ("FT", "C", "intel_numa"): (1.62, 3.94),  # ~0.8x from the FT.C rows.
    ("FT", "C", "amd_numa"): (0.39, 0.46),
    ("CG", "C", "intel_uma"): (0.91, 2.41),
    ("CG", "C", "intel_numa"): (1.43, 3.31),
    ("CG", "C", "amd_numa"): (0.83, 1.91),
    ("SP", "C", "intel_uma"): (3.34, 7.05),
    ("SP", "C", "intel_numa"): (6.55, 11.59),
    ("SP", "C", "amd_numa"): (4.69, 9.84),
}

#: Half/full active-core counts per testbed (Table II column headers).
HALF_FULL: dict[str, tuple[int, int]] = {
    "intel_uma": (4, 8),
    "intel_numa": (12, 24),
    "amd_numa": (24, 48),
}

#: Bump when the flow model or machine presets change in ways that
#: invalidate shipped calibration values.
CALIBRATION_VERSION = 3


def machine_key(machine: Machine) -> str:
    """Identify which testbed a machine model corresponds to.

    Matched structurally (architecture + core count) so that rebuilding a
    preset, or constructing an equivalent machine by hand, still
    calibrates.  Unknown machines get a name-derived key with no Table II
    anchors.
    """
    if machine.architecture is MemoryArchitecture.UMA and machine.n_cores == 8:
        return "intel_uma"
    if machine.architecture is MemoryArchitecture.NUMA:
        if machine.n_cores == 24 and machine.n_controllers == 2:
            return "intel_numa"
        if machine.n_cores == 48 and machine.n_controllers == 8:
            return "amd_numa"
    return machine.name.lower().replace(" ", "_")


def table2_target(program: str, size: str,
                  machine: Machine) -> tuple[float, float] | None:
    """``(omega_half, omega_full)`` from Table II, or None if unanchored."""
    return TABLE2.get((program, size, machine_key(machine)))


def _omega_at(profile: MemoryProfile, machine: Machine, n: int) -> float:
    """Noise-free omega(n)."""
    base = solve_flow(profile, machine,
                      CoreAllocation.paper_policy(machine, 1)).total_cycles
    at_n = solve_flow(profile, machine,
                      CoreAllocation.paper_policy(machine, n)).total_cycles
    return (at_n - base) / base


def _bisect(apply_knob, target: float, lo: float, hi: float,
            tol: float = 1e-3, max_iter: int = 60) -> float:
    """Find knob value with omega(knob) ~= target; omega must be increasing.

    ``apply_knob(value) -> omega``.  Bisection in log space when the
    bracket spans decades.  When the target exceeds the reachable ceiling
    by less than 20 %, settles for the smallest knob within half a percent
    of the ceiling (EXPERIMENTS.md records the residual deviation);
    further out it raises :class:`CalibrationError`.
    """
    f_lo = apply_knob(lo)
    if f_lo >= target:
        return lo
    f_hi = apply_knob(hi)
    if f_hi < target:
        if f_hi < 0.80 * target:
            raise CalibrationError(
                f"target omega {target} unreachable: knob ceiling gives "
                f"{f_hi:.3f}")
        target = 0.995 * f_hi
    use_log = hi / lo > 100.0
    for _ in range(max_iter):
        mid = math.sqrt(lo * hi) if use_log else 0.5 * (lo + hi)
        f_mid = apply_knob(mid)
        if abs(f_mid - target) <= tol:
            return mid
        if f_mid < target:
            lo = mid
        else:
            hi = mid
    return math.sqrt(lo * hi) if use_log else 0.5 * (lo + hi)


def _solve_knobs(program: str, size: str, mkey: str) -> dict[str, float]:
    """Compute the calibrated knob values for one anchored triple."""
    with obs.span("calibration.fit", program=program, size=size,
                  machine=mkey), \
            obs.timed(_names.CALIBRATION_FIT_SECONDS,
                      anchor=f"{program}.{size}@{mkey}"):
        return _solve_knobs_inner(program, size, mkey)


def _solve_knobs_inner(program: str, size: str, mkey: str) -> dict[str, float]:
    from repro.machine import amd_numa, intel_numa, intel_uma

    presets = {"intel_uma": intel_uma, "intel_numa": intel_numa,
               "amd_numa": amd_numa}
    machine = presets[mkey]()
    workload = get_workload(program)
    profile = workload.profile(size, machine)
    target = TABLE2.get((program, size, mkey))
    if target is None:
        return {}
    omega_half, omega_full = target
    half, full = HALF_FULL[mkey]

    if profile.calibration_mode == "miss_growth":
        if omega_full <= 1e-9 or \
                _omega_at(profile, machine, full) >= omega_full:
            return {"cross_package_miss_growth": 0.0}
        value = _bisect(
            lambda g: _omega_at(profile.with_cross_package_growth(g),
                                machine, full),
            omega_full, lo=max(profile.llc_misses, 1.0), hi=1e14)
        return {"cross_package_miss_growth": value}

    if profile.calibration_mode != "miss_volume":
        return {}

    if omega_full <= 1e-9:
        # No contention target: keep traffic negligible.
        return {"llc_misses": min(profile.llc_misses, 1e5)}

    if machine.architecture is MemoryArchitecture.UMA or omega_half <= 1e-9:
        # Single-anchor: the UMA staircase has no remote dimension.
        value = _bisect(
            lambda r: _omega_at(profile.with_misses(r), machine, full),
            omega_full, lo=1e4, hi=1e14)
        return {"llc_misses": value}

    # NUMA two-anchor calibration: for each candidate remote penalty,
    # fit r against the half-machine anchor, then drive the full-machine
    # anchor with the penalty.
    def fit_r(penalty: float) -> float:
        return _bisect(
            lambda r: _omega_at(
                profile.with_remote_penalty(penalty).with_misses(r),
                machine, half),
            omega_half, lo=1e4, hi=1e14, tol=2e-3, max_iter=40)

    def full_given(penalty: float) -> float:
        r = fit_r(penalty)
        return _omega_at(
            profile.with_remote_penalty(penalty).with_misses(r),
            machine, full)

    penalty = _bisect(full_given, omega_full, lo=0.05, hi=64.0,
                      tol=2e-3, max_iter=24)
    return {"remote_penalty": penalty, "llc_misses": fit_r(penalty)}


@functools.lru_cache(maxsize=None)
def _calibrate_cached(program: str, size: str,
                      mkey: str) -> tuple[tuple[str, float], ...]:
    """Knob values for one triple: shipped table first, else computed."""
    try:
        from repro.runtime.calibration_table import TABLE, VERSION

        if VERSION == CALIBRATION_VERSION:
            entry = TABLE.get((program, size, mkey))
            if entry is not None:
                return tuple(sorted(entry.items()))
    except ImportError:
        pass
    return tuple(sorted(_solve_knobs(program, size, mkey).items()))


def apply_knobs(profile: MemoryProfile,
                knobs: dict[str, float]) -> MemoryProfile:
    """Apply calibrated knob values to a profile."""
    for name, value in knobs.items():
        if name == "llc_misses":
            profile = profile.with_misses(value)
        elif name == "cross_package_miss_growth":
            profile = profile.with_cross_package_growth(value)
        elif name == "remote_penalty":
            profile = profile.with_remote_penalty(value)
        else:
            raise CalibrationError(f"unknown calibration knob {name!r}")
    return profile


def calibrate_profile(program: str, size: str,
                      machine: Machine) -> MemoryProfile:
    """The calibrated memory profile for (program, class) on ``machine``.

    Profiles on machines without Table II anchors (custom machines, or
    x264 everywhere) are returned as profiled.
    """
    workload = get_workload(program)
    profile = workload.profile(size, machine)
    mkey = machine_key(machine)
    obs.counter(_names.CALIBRATION_PROFILE_LOOKUPS)
    if (program, size, mkey) not in TABLE2:
        return profile
    knobs = dict(_calibrate_cached(program, size, mkey))
    return apply_knobs(profile, knobs)


def regenerate_table() -> dict[tuple[str, str, str], dict[str, float]]:
    """Recompute every anchored triple (used by ``python -m repro calibrate``)."""
    out: dict[tuple[str, str, str], dict[str, float]] = {}
    for (program, size, mkey) in sorted(TABLE2):
        out[(program, size, mkey)] = _solve_knobs(program, size, mkey)
    return out


def write_table(path: str) -> None:
    """Write the shipped calibration table module to ``path``."""
    table = regenerate_table()
    lines = [
        '"""Precomputed calibration table — generated by',
        '``python -m repro calibrate``; do not edit by hand."""',
        "",
        f"VERSION = {CALIBRATION_VERSION}",
        "",
        "TABLE = {",
    ]
    for key, knobs in sorted(table.items()):
        lines.append(f"    {key!r}: {knobs!r},")
    lines.append("}")
    lines.append("")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines))
