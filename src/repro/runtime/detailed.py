"""Discrete-event cross-validation of the flow solver.

The flow solver (:mod:`repro.runtime.flow`) computes cycle counts
analytically.  This module rebuilds the *same* single-package memory
system as an explicit discrete-event simulation — cores as processes
alternating compute think time with memory episodes, the controller as a
multi-channel FIFO server with load-dependent two-point service — and
runs it event by event.

It exists for two reasons:

* **validation** — the test suite checks that DES-measured cycle counts
  track the flow solution within stochastic tolerance, so the two
  implementations guard each other;
* **inspection** — the DES exposes per-request waiting-time
  distributions and queue-length traces the analytical path cannot
  produce (used by the examples to show *why* the M/M/1 abstraction
  works at saturation).

Scope: one package (the flow solver's per-chain building block).  The
multi-package coupling is an analytical construct (shadow utilisation)
with no direct DES counterpart, so cross-validation happens at the
component level, where the mapping is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.desim.engine import Simulator
from repro.desim.resources import Server
from repro.machine.topology import Machine, MemoryArchitecture
from repro.util.rng import resolve_rng, spawn_rng
from repro.util.validation import ValidationError, check_integer
from repro.workloads.base import MemoryProfile


@dataclass(frozen=True)
class DetailedRunResult:
    """Outcome of one DES run of a single-package configuration."""

    n_cores: int
    episodes_completed: int
    sim_cycles: float                  # simulated horizon actually used
    total_cycles: float                # paper counter: summed over cores
    memory_stall_cycles: float
    mean_episode_wait: float           # queueing wait per request
    mean_episode_response: float       # wait + service per episode
    controller_utilisation: float
    wait_samples: np.ndarray           # per-episode memory response times

    @property
    def mean_cycle_time(self) -> float:
        """Mean think + memory cycle per episode."""
        return self.sim_cycles and self.total_cycles \
            / max(self.episodes_completed, 1)


def _service_cycles(machine: Machine, rng, utilisation_estimate: float,
                    size: int) -> np.ndarray:
    """Two-point row-hit/conflict service draws at the current load."""
    if machine.architecture is MemoryArchitecture.UMA:
        dram = machine.shared_controller.dram
    else:
        dram = machine.processors[0].controllers[0].dram
    p = dram.conflict_probability_at(min(max(utilisation_estimate, 0.0), 1.0))
    conflicts = rng.random(size) < p
    ns = np.where(conflicts, dram.row_conflict_ns, dram.row_hit_ns)
    return machine.frequency.cycles_in(ns * 1e-9)


def run_detailed_single_package(profile: MemoryProfile, machine: Machine,
                                n_cores: int,
                                episodes_per_core: int = 400,
                                rng=None) -> DetailedRunResult:
    """Simulate ``n_cores`` of the machine's first package event by event.

    Each core loops: exponential think time (mean ``Z`` from the
    profile's aggregates), then a memory episode of ``mlp`` back-to-back
    line requests at the package controller (channels pooled).  Service
    times are the machine's two-point DRAM law evaluated at a
    load-dependent conflict probability (two-pass: a first pass estimates
    utilisation, the second applies it — mirroring the flow solver's
    fixed point).
    """
    check_integer("n_cores", n_cores, minimum=1,
                  maximum=machine.processors[0].n_logical_cores)
    check_integer("episodes_per_core", episodes_per_core, minimum=10)
    rng = resolve_rng(rng)

    episodes_total = profile.llc_misses / profile.mlp
    think_mean = profile.uncontended_compute_cycles / episodes_total
    if machine.architecture is MemoryArchitecture.UMA:
        channels = machine.shared_controller.dram.channels
    else:
        proc = machine.processors[0]
        channels = sum(c.dram.channels for c in proc.controllers)

    def simulate(util_estimate: float) -> DetailedRunResult:
        sim = Simulator()
        server = Server(sim, channels=channels, name="controller")
        streams = spawn_rng(rng, n_cores)
        waits: list[float] = []
        per_core_busy = np.zeros(n_cores)

        def core(idx: int, stream) -> object:
            mlp = max(int(round(profile.mlp)), 1)
            # Background (write-back / prefetch) requests per episode:
            # they occupy channels but do not block the core.
            bg_per_episode = profile.write_amplification - 1.0
            services = _service_cycles(
                machine, stream, util_estimate,
                size=episodes_per_core * (mlp + int(bg_per_episode * mlp) + 2))
            k = 0
            start = sim.now
            bg_credit = 0.0
            for _ in range(episodes_per_core):
                yield sim.timeout(float(stream.exponential(think_mean)))
                t0 = sim.now
                done = None
                for _ in range(mlp):
                    done = server.request(float(services[k]))
                    k += 1
                bg_credit += bg_per_episode * mlp
                while bg_credit >= 1.0:
                    server.request(float(services[k]))  # non-blocking
                    k += 1
                    bg_credit -= 1.0
                # The episode blocks until its last demand request
                # completes; write-backs drain behind it.
                yield done
                waits.append(sim.now - t0)
            per_core_busy[idx] = sim.now - start

        for idx, stream in enumerate(streams):
            sim.process(core(idx, stream))
        sim.run()
        horizon = sim.now
        if horizon <= 0:
            raise ValidationError("simulation made no progress")
        n_episodes = len(waits)
        wait_arr = np.asarray(waits)
        mem_per_episode = float(wait_arr.mean())
        # Paper counters: every core contributes think + memory time for
        # its episodes.
        total = float(per_core_busy.sum())
        stall = float(wait_arr.sum())
        return DetailedRunResult(
            n_cores=n_cores,
            episodes_completed=n_episodes,
            sim_cycles=horizon,
            total_cycles=total,
            memory_stall_cycles=stall,
            mean_episode_wait=float(server.stats.mean_wait()),
            mean_episode_response=mem_per_episode,
            controller_utilisation=server.stats.utilisation(
                horizon, channels),
            wait_samples=wait_arr,
        )

    # Two-pass load-dependent service, like the flow solver's fixed point.
    first = simulate(util_estimate=0.0)
    return simulate(util_estimate=first.controller_utilisation)


def compare_with_flow(profile: MemoryProfile, machine: Machine,
                      n_cores: int, episodes_per_core: int = 400,
                      rng=None) -> dict:
    """Run both paths on one configuration; returns the comparison.

    The flow solver models the package as an MVA chain with congestion
    heuristics the DES does not share (foreign inflation is zero for a
    single package, so the remaining differences are the MVA abstraction
    itself), hence agreement is expected to a few tens of percent on the
    *memory response*, not to simulation precision.
    """
    from repro.machine.allocation import CoreAllocation
    from repro.runtime.flow import solve_flow

    detailed = run_detailed_single_package(
        profile, machine, n_cores, episodes_per_core=episodes_per_core,
        rng=rng)
    alloc = CoreAllocation.paper_policy(machine, n_cores)
    flow = solve_flow(profile, machine, alloc)
    episodes_total = profile.llc_misses / profile.mlp
    think_mean = profile.uncontended_compute_cycles / episodes_total
    flow_mem_per_episode = flow.memory_stall_cycles / episodes_total
    des_cycle = think_mean + detailed.mean_episode_response
    flow_cycle = think_mean + flow_mem_per_episode
    return {
        "des": detailed,
        "flow": flow,
        "des_cycle_per_episode": des_cycle,
        "flow_cycle_per_episode": flow_cycle,
        "cycle_ratio": des_cycle / flow_cycle,
        "des_utilisation": detailed.controller_utilisation,
    }
