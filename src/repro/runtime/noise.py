"""Run-to-run measurement variability.

The paper identifies two noise sources (Section V): (i) intrinsic
variability of counter measurements, aggravated by bursty traffic, and
(ii) load imbalance from oversubscription — threads are fixed at the
machine's core count, so at low active-core counts many threads share each
core and their imbalance varies between runs.  Both are modelled as
seeded multiplicative lognormal factors; experiments average five
repetitions exactly as the paper does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.counters.papi import CounterSample
from repro.machine.allocation import CoreAllocation
from repro.runtime.flow import FlowResult
from repro.util.rng import resolve_rng
from repro.util.validation import check_nonnegative
from repro.workloads.base import MemoryProfile


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative measurement noise.

    Parameters
    ----------
    base_sigma:
        Relative standard deviation of the memory-stall term for a smooth,
        non-oversubscribed run.
    burst_weight:
        How strongly traffic burstiness (interarrival SCV) amplifies the
        noise — this is what degrades the 1/C(n) linearity of EP and x264
        in Table IV.
    oversub_weight:
        Amplification from oversubscription imbalance (threads per core).
    miss_sigma:
        Relative standard deviation of the LLC miss count (small: the
        paper finds miss counts nearly constant across runs).
    """

    base_sigma: float = 0.010
    burst_weight: float = 0.9
    oversub_weight: float = 0.5
    miss_sigma: float = 0.006

    def __post_init__(self) -> None:
        check_nonnegative("base_sigma", self.base_sigma)
        check_nonnegative("burst_weight", self.burst_weight)
        check_nonnegative("oversub_weight", self.oversub_weight)
        check_nonnegative("miss_sigma", self.miss_sigma)

    def sigma_for(self, profile: MemoryProfile,
                  alloc: CoreAllocation) -> float:
        """Effective relative sigma of the stall term for one configuration."""
        burst_factor = 1.0 + self.burst_weight * math.log10(
            1.0 + profile.burst.arrival_scv)
        denom = max(alloc.machine.n_cores - 1, 1)
        oversub_factor = 1.0 + self.oversub_weight * (
            (alloc.oversubscription - 1.0) / denom)
        return self.base_sigma * burst_factor * oversub_factor

    def sample(self, flow: FlowResult, profile: MemoryProfile,
               alloc: CoreAllocation, rng=None) -> CounterSample:
        """One noisy counter observation of a noise-free flow solution."""
        rng = resolve_rng(rng)
        sigma = self.sigma_for(profile, alloc)
        stall_mult = float(rng.lognormal(mean=-0.5 * sigma ** 2, sigma=sigma)) \
            if sigma > 0 else 1.0
        miss_mult = float(rng.lognormal(
            mean=-0.5 * self.miss_sigma ** 2, sigma=self.miss_sigma)) \
            if self.miss_sigma > 0 else 1.0
        # Work cycles jitter an order of magnitude less than stalls.
        wsig = sigma * 0.1
        work_mult = float(rng.lognormal(mean=-0.5 * wsig ** 2, sigma=wsig)) \
            if wsig > 0 else 1.0
        work = flow.work_cycles * work_mult
        stall = (flow.base_stall_cycles
                 + flow.memory_stall_cycles * stall_mult)
        return CounterSample(
            total_cycles=work + stall,
            instructions=flow.instructions,
            stall_cycles=stall,
            llc_misses=flow.llc_misses * miss_mult,
        )


#: Noise disabled entirely — used by calibration and by determinism tests.
NOISELESS = NoiseModel(base_sigma=0.0, burst_weight=0.0,
                       oversub_weight=0.0, miss_sigma=0.0)
