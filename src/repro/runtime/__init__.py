"""The measurement substrate: simulated program execution on machine models.

This package plays the role of the paper's physical testbeds.  Given a
workload profile, a machine and a core allocation it produces the hardware
counter values a run would have measured:

* :mod:`repro.runtime.flow` — the closed queueing-network solver.  Active
  cores are customers alternating between a compute think state and FCFS
  memory stations (front-side buses, memory controllers, interconnect
  delays); processors sharing a controller are coupled through a shadow-
  utilisation fixed point.  This is deliberately *richer* than the paper's
  open M/M/1 analytical model (closed-loop feedback, general service,
  multi-station routing), so fitting the paper's model to these
  measurements is a meaningful test.
* :mod:`repro.runtime.noise` — run-to-run variability: burstiness-scaled
  multiplicative noise plus oversubscription imbalance, seeded.
* :mod:`repro.runtime.calibration` — anchors each (program, class,
  machine) to its Table II full-core contention value by solving for one
  scalar (miss volume, or cross-package miss growth for EP-like
  programs); every other feature of the curves is emergent.
* :mod:`repro.runtime.measurement` — the experiment-facing API:
  :class:`MeasurementRun` sweeps core counts and averages repetitions,
  returning :class:`repro.counters.CounterSample` values.
"""

from repro.runtime.calibration import (
    CalibrationError,
    calibrate_profile,
    machine_key,
    table2_target,
)
from repro.runtime.detailed import (
    DetailedRunResult,
    compare_with_flow,
    run_detailed_single_package,
)
from repro.runtime.flow import (
    FlowResult,
    batch_solve_enabled,
    cross_package_share,
    smt_paired_fraction,
    solve_flow,
    solve_flow_batch,
    solve_flow_cells,
)
from repro.runtime.measurement import (
    MeasurementRun,
    measure_curve,
    measure_single,
    prime_runs,
)
from repro.runtime.noise import NoiseModel

__all__ = [
    "FlowResult",
    "solve_flow",
    "solve_flow_batch",
    "solve_flow_cells",
    "batch_solve_enabled",
    "prime_runs",
    "cross_package_share",
    "smt_paired_fraction",
    "NoiseModel",
    "calibrate_profile",
    "machine_key",
    "table2_target",
    "CalibrationError",
    "MeasurementRun",
    "measure_curve",
    "measure_single",
    "DetailedRunResult",
    "run_detailed_single_package",
    "compare_with_flow",
]
