"""The experiment-facing measurement API.

:class:`MeasurementRun` reproduces the paper's experimental procedure: fix
the thread count at the machine's core count, sweep the number of active
cores under fill-processor-first affinity, run each configuration five
times, and report averaged counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.counters.papi import CounterSample
from repro.machine.allocation import CoreAllocation
from repro.machine.topology import Machine
from repro.obs import names as _names
from repro.perf.cache import caches_enabled
from repro.runtime.calibration import calibrate_profile
from repro.runtime.flow import batch_solve_enabled, solve_flow, solve_flow_cells
from repro.runtime.noise import NoiseModel
from repro.util.rng import resolve_rng, spawn_rng
from repro.util.validation import check_integer
from repro.workloads.base import MemoryProfile


def _average_samples(samples: list[CounterSample]) -> CounterSample:
    """Arithmetic mean of repeated counter observations (paper: 5 runs)."""
    return CounterSample(
        total_cycles=float(np.mean([s.total_cycles for s in samples])),
        instructions=float(np.mean([s.instructions for s in samples])),
        stall_cycles=float(np.mean([s.stall_cycles for s in samples])),
        llc_misses=float(np.mean([s.llc_misses for s in samples])),
    )


@dataclass
class MeasurementRun:
    """A profiled sweep of one (program, class) over active core counts.

    Parameters
    ----------
    program, size:
        Table I program name and problem class.
    machine:
        The machine model to run on.
    repetitions:
        Runs to average per configuration (paper: 5).
    noise:
        The measurement-noise model; pass
        :data:`repro.runtime.noise.NOISELESS` for deterministic output.
    rng:
        Seed or generator; child streams are spawned per configuration so
        results for one core count are independent of which others ran.
    """

    program: str
    size: str
    machine: Machine
    repetitions: int = 5
    noise: NoiseModel = field(default_factory=NoiseModel)
    rng: object = None

    def __post_init__(self) -> None:
        check_integer("repetitions", self.repetitions, minimum=1)
        self._profile: MemoryProfile = calibrate_profile(
            self.program, self.size, self.machine)
        self._rng = resolve_rng(self.rng)  # type: ignore[arg-type]
        self._streams = spawn_rng(self._rng, self.machine.n_cores)

    @property
    def profile(self) -> MemoryProfile:
        """The calibrated profile driving the run."""
        return self._profile

    def measure(self, n_active: int) -> CounterSample:
        """Averaged counters for one active-core count."""
        check_integer("n_active", n_active, minimum=1,
                      maximum=self.machine.n_cores)
        with obs.span("measure.point", program=self.program, size=self.size,
                      machine=self.machine.name, n=n_active):
            alloc = CoreAllocation.paper_policy(self.machine, n_active)
            flow = solve_flow(self._profile, self.machine, alloc)
            stream = self._streams[n_active - 1]
            samples = [
                self.noise.sample(flow, self._profile, alloc, rng=stream)
                for _ in range(self.repetitions)
            ]
            obs.counter(_names.RUNTIME_MEASUREMENTS)
            return _average_samples(samples)

    def prime(self, core_counts: list[int] | None = None) -> None:
        """Batch-solve the flow cells of an upcoming sweep (default: all).

        One :func:`repro.runtime.flow.solve_flow_cells` call runs every
        (profile, machine, allocation) cell of the sweep in lock-step
        and back-fills the flow cache, so the per-point :meth:`measure`
        calls that follow are memo hits.  Results are bit-identical to
        solving per point — the batch kernel shares the scalar path's
        arithmetic — so this is purely a wall-time optimisation.  A
        no-op when sweep batching (``REPRO_BATCH_SOLVE``) or the perf
        cache (``REPRO_PERF_CACHE``) is off: the per-point calls then
        solve scalar, bit-identically.
        """
        prime_runs([(self, core_counts)])

    def sweep(self, core_counts: list[int] | None = None
              ) -> dict[int, CounterSample]:
        """Measure a list of core counts (default: 1..max).

        The sweep's flow solves are batched through :meth:`prime`; the
        per-point noise sampling and averaging are unchanged.
        """
        if core_counts is None:
            core_counts = list(range(1, self.machine.n_cores + 1))
        self.prime(core_counts)
        return {n: self.measure(n) for n in core_counts}

    def omega(self, n_active: int, baseline: CounterSample | None = None
              ) -> float:
        """Measured degree of contention at ``n_active`` (paper eq. 4)."""
        base = baseline if baseline is not None else self.measure(1)
        return (self.measure(n_active).total_cycles - base.total_cycles) \
            / base.total_cycles

    def omega_curve(self, core_counts: list[int] | None = None
                    ) -> dict[int, float]:
        """Measured omega(n) over a sweep, sharing one baseline."""
        base = self.measure(1)
        if core_counts is None:
            core_counts = list(range(1, self.machine.n_cores + 1))
        return {
            n: (self.measure(n).total_cycles - base.total_cycles)
            / base.total_cycles
            for n in core_counts
        }


def prime_runs(
        runs: list[tuple[MeasurementRun, list[int] | None]]) -> None:
    """Batch-solve the flow cells of several runs' sweeps in one call.

    The whole-grid form of :meth:`MeasurementRun.prime`: cells from
    different machines and workloads are pooled into a single lock-step
    batch (``table2`` primes its full machine x program x size grid at
    once).  Entries pair a run with the core counts it is about to
    measure (``None`` = 1..max).  No-op unless both sweep batching and
    the perf cache are enabled — the batch back-fills the cache, which
    is what the later ``measure`` calls consult.
    """
    if not (batch_solve_enabled() and caches_enabled()):
        return
    cells = []
    for run, core_counts in runs:
        if core_counts is None:
            core_counts = list(range(1, run.machine.n_cores + 1))
        for n in core_counts:
            cells.append((run.profile, run.machine,
                          CoreAllocation.paper_policy(run.machine, n)))
    if cells:
        solve_flow_cells(cells)


def measure_single(program: str, size: str, machine: Machine, n_active: int,
                   repetitions: int = 5, rng=None) -> CounterSample:
    """One-shot convenience wrapper around :class:`MeasurementRun`."""
    run = MeasurementRun(program=program, size=size, machine=machine,
                         repetitions=repetitions, rng=rng)
    return run.measure(n_active)


def measure_curve(program: str, size: str, machine: Machine,
                  core_counts: list[int] | None = None,
                  repetitions: int = 5, rng=None
                  ) -> dict[int, CounterSample]:
    """Counter sweep over active core counts (paper Fig. 3 data)."""
    run = MeasurementRun(program=program, size=size, machine=machine,
                         repetitions=repetitions, rng=rng)
    return run.sweep(core_counts)
