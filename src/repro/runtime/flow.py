"""Closed queueing-network solver for simulated program execution.

Model
-----
The ``r`` off-chip requests of a run are grouped into *stall episodes* of
``mlp`` overlapping requests.  Each active core cycles through:

1. a **think** (delay) station — the compute cycles between episodes,
   ``Z = (W + B) / episodes``;
2. (UMA) its processor's **front-side bus** — an FCFS station serialising
   the episode's ``mlp`` line transfers;
3. a **memory-controller group** — the target processor's controllers
   pooled into one station whose rate is ``channels / mean_service``;
   under the paper's homogeneous-affinity assumption a core on processor
   ``p`` visits processor ``q``'s group with probability ``n_q / n``;
4. (NUMA) an **interconnect delay** — the hop latency toward the visited
   controller, paid once per episode (the overlapped requests pipeline
   behind the first).

Cores of each processor form one closed chain solved by exact MVA;
processors sharing controller groups are coupled by a shadow-server fixed
point (a foreign load of utilisation ``rho`` inflates the local view of
the service demand by ``1/(1 - rho)``).

Outputs are the paper's counters: total cycles across cores, work cycles,
stall cycles and LLC misses, with cycle bookkeeping exact by construction:
``total = W + B + memory_stall``.

Fast path
---------
Three layers keep repeated solves cheap (see docs/PERFORMANCE.md):

* whole solves are memoized in :data:`repro.perf.flow_cache`, keyed on
  the content hash of (machine, profile, allocation);
* within the shadow fixed point, each Jacobi iteration assembles every
  processor's chain into one ``[chains, stations]`` batch — rows are
  canonically sorted and bitwise-deduplicated (symmetric processors
  collapse to a single MVA solve) and individual chain solutions are
  memoized in :data:`repro.perf.mva_cache`;
* once the damped iteration is in its geometric tail, the remaining
  distance to the fixed point is extrapolated in one jump instead of
  being iterated out (the loop still runs to the usual tolerance, so the
  fixed point reached is the same to within it).

Sweep batching
--------------
Experiment drivers evaluate whole (machine x workload x allocation)
grids; :func:`solve_flow_batch` / :func:`solve_flow_cells` run the fixed
point of *every* grid cell in lock-step: each round assembles the pending
chain rows of all unconverged cells, solves them in one MVA batch per
station width, and steps every cell once.  Converged cells freeze while
stragglers keep iterating.  Per-cell arithmetic is the same
:class:`_FlowCell` code the scalar path runs — batch results are
bit-identical to scalar ones by construction — and any cell the batch
attempt cannot converge falls through to the scalar resilience ladder,
so watchdogs, degradation events and fault injection keep their exact
semantics.  The ``REPRO_BATCH_SOLVE`` environment switch (default on)
lets drivers opt out; see docs/PERFORMANCE.md.
"""

from __future__ import annotations

import os

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import cast

import numpy as np

from repro.machine.allocation import CoreAllocation
from repro.machine.topology import Machine, MemoryArchitecture
from repro.obs import names as _names, state as _obs_state
from repro.perf.cache import (
    MISS as _MISS,
    flow_cache as _flow_cache,
    mva_cache as _mva_cache,
)
from repro.perf.keys import flow_key as _flow_key
from repro.qnet.mva import (
    bound_throughputs,
    exact_throughputs,
    exact_throughputs_cells,
    schweitzer_throughputs,
)
from repro.resilience import faultinject
from repro.resilience.degrade import DegradationEvent, record_event
from repro.resilience.errors import SolverError
from repro.resilience.watchdog import DEFAULT_POLICY, ConvergencePolicy, Watchdog
from repro.util.validation import ValidationError, check_positive
from repro.workloads.base import MemoryProfile

#: The solver site name used in watchdog raises, degradation events and
#: fault-injection plans for this module's shadow fixed point.
FLOW_SITE = "runtime.flow"

#: Congestion gain of the shadow coupling: a station loaded by a
#: foreign/background busy fraction ``b`` looks ``(1 + GAIN * b)`` times
#: slower to the local chain.  The bounded linear law replaces the
#: open-queue pole ``1/(1 - b)``: the pole, combined with load-dependent
#: service, makes the coupled fixed point bistable — omega(r) would jump
#: discontinuously between branches instead of growing smoothly the way
#: the paper's measured curves do.
_CONGESTION_GAIN = 20.0
_RHO_CEILING = 0.98  # cap on busy fractions entering the linear law
#: Cap on the effective station SCV fed to the AMVA residual correction.
_SCV_CAP = 8.0

#: Geometric-tail extrapolation of the damped fixed point.  The 0.5-damped
#: Jacobi update converges linearly, so near the fixed point the per-key
#: deltas form a geometric series with a common ratio ``r``; once the
#: deltas are small (asymptotic regime) and the ratio is stable across
#: keys, the remaining tail ``delta * r / (1 - r)`` is added in one jump.
#: The loop still only exits at the usual 1e-9 tolerance, so a bad jump
#: costs iterations rather than accuracy.
_TAIL_DELTA = 1e-2       # only extrapolate once max_delta is below this
_TAIL_MAX_JUMPS = 6
_TAIL_RATIO_LO = 0.05    # reject non-contracting or alternating tails
_TAIL_RATIO_HI = 0.95
_TAIL_RATIO_TOL = 0.15   # per-key deviation allowed from the common ratio


@dataclass(frozen=True)
class FlowResult:
    """Counter-level outcome of one simulated (noise-free) run."""

    n_active: int
    total_cycles: float
    work_cycles: float
    base_stall_cycles: float
    memory_stall_cycles: float
    llc_misses: float
    instructions: float
    per_core_cycles: tuple[float, ...]      # indexed by processor
    controller_utilisation: dict[str, float]
    #: Which rung of the degradation ladder produced this result
    #: ("exact" unless the fixed point degraded; see docs/RESILIENCE.md).
    solver_stage: str = "exact"

    def __post_init__(self) -> None:
        # A result must describe at least one processor: an empty tuple
        # would make ``makespan_cycles`` raise a bare ``max()`` error far
        # from the construction site that caused it.
        if not self.per_core_cycles:
            raise ValidationError(
                "per_core_cycles must be non-empty: a FlowResult needs at "
                "least one processor (zero-active-core allocations are "
                "rejected upstream)")

    @property
    def stall_cycles(self) -> float:
        """PAPI_RES_STL: all stalls (base plus off-chip memory)."""
        return self.base_stall_cycles + self.memory_stall_cycles

    @property
    def makespan_cycles(self) -> float:
        """Wall-clock of the slowest processor's cores, in cycles.

        ``per_core_cycles`` is guaranteed non-empty at construction, so
        this never raises.
        """
        return max(self.per_core_cycles)


def _copy_cached(result: FlowResult) -> FlowResult:
    """Cheap copy of a memoized :class:`FlowResult` for one caller.

    The dataclass is frozen but holds one mutable dict, so each cache
    hit must hand out its own copy.  ``dataclasses.replace`` re-runs
    ``__init__``/``__post_init__`` (field iteration plus validation) on
    every hit, which is measurable at service rates; the cached value
    already passed validation at construction, so this clones the
    instance dict directly and only the mutable member is rebuilt.
    """
    out = object.__new__(FlowResult)
    out.__dict__.update(result.__dict__)
    out.__dict__["controller_utilisation"] = dict(result.controller_utilisation)
    return out


def cross_package_share(alloc: CoreAllocation) -> float:
    """Fraction of requests that leave the requesting core's processor.

    Zero while the allocation stays on one package; under homogeneous
    affinity it equals ``1 - local_fraction`` beyond that.
    """
    if len(alloc.active_processors()) <= 1:
        return 0.0
    return 1.0 - alloc.local_fraction()


def smt_paired_fraction(alloc: CoreAllocation) -> float:
    """Fraction of active logical cores whose SMT sibling is also active."""
    active = set(alloc.active_core_ids)
    cores = alloc.machine.cores()
    paired = sum(
        1 for cid in active
        if cores[cid].smt_sibling is not None and cores[cid].smt_sibling in active
    )
    return paired / len(active)


def _controller_groups(machine: Machine) -> dict[str, dict]:
    """Pool controllers into station groups.

    UMA: one shared group.  NUMA: one group per processor (its controllers
    pooled), keyed ``"mc<p>"``.  Each group records the pooled service
    time per request and its service-time SCV.
    """
    freq = machine.frequency
    groups: dict[str, dict] = {}
    if machine.architecture is MemoryArchitecture.UMA:
        ctl = machine.shared_controller
        assert ctl is not None
        groups["mc"] = {
            "processor": None,
            "service": ctl.dram.mean_service_cycles(freq) / ctl.dram.channels,
            "service_sat": ctl.dram.mean_service_cycles_at(freq, 1.0)
            / ctl.dram.channels,
            "scv": ctl.dram.service_scv(),
            "latency": ctl.dram.idle_latency_cycles(freq),
        }
        return groups
    for proc in machine.processors:
        total_channels = sum(c.dram.channels for c in proc.controllers)
        # Controllers of one processor have identical DRAM in our presets;
        # average defensively in case a custom machine mixes them.
        mean_service = sum(
            c.dram.mean_service_cycles(freq) for c in proc.controllers
        ) / len(proc.controllers)
        mean_service_sat = sum(
            c.dram.mean_service_cycles_at(freq, 1.0) for c in proc.controllers
        ) / len(proc.controllers)
        scv = sum(c.dram.service_scv() for c in proc.controllers) \
            / len(proc.controllers)
        groups[f"mc{proc.index}"] = {
            "processor": proc.index,
            "service": mean_service / total_channels,
            "service_sat": mean_service_sat / total_channels,
            "scv": scv,
            "latency": sum(
                c.dram.idle_latency_cycles(freq) for c in proc.controllers
            ) / len(proc.controllers),
        }
    return groups


def _hops_between(machine: Machine, src_proc: int, dst_proc: int) -> float:
    """Mean hop count between two processors' controller sets."""
    if machine.interconnect is None or src_proc == dst_proc:
        return 0.0
    src = [c.controller_id for c in machine.processors[src_proc].controllers]
    dst = [c.controller_id for c in machine.processors[dst_proc].controllers]
    return sum(machine.interconnect.hops(a, b) for a in src for b in dst) \
        / (len(src) * len(dst))


def _hop_cycles(machine: Machine, src_proc: int, dst_proc: int) -> float:
    """Interconnect latency (cycles) between two processors' controllers."""
    if machine.interconnect is None or src_proc == dst_proc:
        return 0.0
    src = [c.controller_id for c in machine.processors[src_proc].controllers]
    dst = [c.controller_id for c in machine.processors[dst_proc].controllers]
    ns = sum(machine.interconnect.latency_ns(a, b) for a in src for b in dst) \
        / (len(src) * len(dst))
    return machine.frequency.cycles_in(ns * 1e-9)


def solve_flow(profile: MemoryProfile, machine: Machine,
               alloc: CoreAllocation,
               policy: ConvergencePolicy | None = None) -> FlowResult:
    """Solve the closed network for one allocation; see module docstring.

    Results are memoized in :data:`repro.perf.flow_cache`; a repeat solve
    of an identical (machine, profile, allocation) triple returns a copy
    of the cached result (``runtime.flow.solves`` counts actual solves,
    ``perf.cache.flow.hits`` the memoized returns).

    The shadow fixed point runs under a convergence watchdog and the
    degradation ladder of ``policy`` (default
    :data:`repro.resilience.DEFAULT_POLICY`): a non-converging attempt
    is retried with escalated damping, then degraded exact MVA →
    Schweitzer AMVA → asymptotic bounds.  Every fall is recorded via
    :func:`repro.resilience.record_event` (surfaced in experiment
    notes) and the producing rung is on ``FlowResult.solver_stage``.
    The cache is bypassed while a non-default policy or a fault
    injection targeting :data:`FLOW_SITE` is active, so degraded
    results from injected faults are never memoized.

    Under telemetry, every call — memoized or not — lands one
    observation in the ``latency.flow.solve_seconds`` histogram: the
    per-cell latency a caller actually experiences, which is what the
    service-level p99 gate watches.
    """
    tel = _obs_state._active
    if tel is None:
        return _solve_flow_entry(profile, machine, alloc, policy)
    with tel.metrics.timer(_names.LATENCY_FLOW_SOLVE_SECONDS):
        return _solve_flow_entry(profile, machine, alloc, policy)


def _solve_flow_entry(profile: MemoryProfile, machine: Machine,
                      alloc: CoreAllocation,
                      policy: ConvergencePolicy | None) -> FlowResult:
    if alloc.machine is not machine and alloc.machine != machine:
        raise ValidationError("allocation was built for a different machine")
    use_cache = policy is None and not faultinject.solver_fault_armed(FLOW_SITE)
    pol = policy if policy is not None else DEFAULT_POLICY
    key = _flow_key(profile, machine, alloc) if use_cache else None
    if use_cache:
        hit = _flow_cache.get(key)
        if hit is not _MISS:
            return _copy_cached(hit)
    tel = _obs_state._active
    if tel is not None:
        tel.metrics.counter(_names.RUNTIME_FLOW_SOLVES).inc()
    result = _solve_flow_resilient(profile, machine, alloc, pol)
    if use_cache:
        _flow_cache.put(key, result)
    return result


def _solve_flow_resilient(profile: MemoryProfile, machine: Machine,
                          alloc: CoreAllocation,
                          policy: ConvergencePolicy) -> FlowResult:
    """Run the attempt schedule of ``policy`` until a rung produces.

    The final rung accepts its last iterate instead of raising, so with
    the default ladder (ending in ``bounds``) this always returns; a
    custom ladder whose last rung still fails propagates that failure.
    """
    attempts = policy.attempts()
    tel = _obs_state._active
    last_error: SolverError | None = None
    for i, (solver, damping) in enumerate(attempts):
        final = i == len(attempts) - 1
        try:
            faultinject.maybe_fail_solver(FLOW_SITE, attempt=i)
            return _solve_flow(profile, machine, alloc, solver=solver,
                               damping=damping, policy=policy,
                               accept_nonconverged=final)
        except SolverError as exc:
            last_error = exc
            if tel is not None:
                tel.metrics.counter(_names.RUNTIME_FLOW_NONCONVERGED).inc()
            if final:
                raise
            next_solver, next_damping = attempts[i + 1]
            if next_solver == solver:
                record_event(DegradationEvent(
                    site=FLOW_SITE, action="retry", from_stage=solver,
                    to_stage=next_solver,
                    detail=f"escalating damping {damping:g} -> "
                           f"{next_damping:g}: {exc.message}"))
            else:
                record_event(DegradationEvent(
                    site=FLOW_SITE, action="degrade", from_stage=solver,
                    to_stage=next_solver, detail=exc.message))
    raise last_error if last_error else AssertionError("empty schedule")


def _solve_flow(profile: MemoryProfile, machine: Machine,
                alloc: CoreAllocation, *, solver: str = "exact",
                damping: float = 0.5,
                policy: ConvergencePolicy = DEFAULT_POLICY,
                accept_nonconverged: bool = False) -> FlowResult:
    """Scalar driver: build one cell and step it to convergence.

    The per-iteration arithmetic lives in :class:`_FlowCell`; this loop
    is the degenerate one-cell instance of the lock-step the batch
    driver (:func:`solve_flow_cells`) runs, so scalar and batch results
    agree bit for bit by construction.
    """
    cell = _FlowCell(profile, machine, alloc, solver=solver, damping=damping,
                     policy=policy, accept_nonconverged=accept_nonconverged)
    while True:
        rows = cell.assemble()
        if rows:
            cell.absorb(_solve_rows(cell.batch_solver, rows))
        if cell.update():
            return cell.finalize()


def _solve_rows(batch_solver, rows: list[tuple]) -> dict:
    """Solve deduplicated chain rows in stacked batches; memoize each.

    ``rows`` are ``(key, population, demands, is_queue, scv)`` tuples as
    produced by :meth:`_FlowCell.assemble`.  Rows are grouped by station
    width and stacked into one solver call per width: pooling cells of
    different machines must never pad a row beyond its own cell's width,
    because crossing numpy's pairwise-summation block boundaries could
    change the last ulp of a row's demand sum — the same cache key must
    map to the same bits no matter which driver (or batch composition)
    solved it.
    """
    out: dict[tuple, float] = {}
    by_width: dict[int, list[tuple]] = {}
    for row in rows:
        by_width.setdefault(len(row[2]), []).append(row)
    batches = [batch for _, batch in sorted(by_width.items())]
    blocks = [(
        np.stack([b[2] for b in batch]),
        np.stack([b[3] for b in batch]),
        np.stack([b[4] for b in batch]),
        np.array([b[1] for b in batch]),
    ) for batch in batches]
    if batch_solver is exact_throughputs:
        solved = exact_throughputs_cells(blocks)
    else:
        solved = [batch_solver(*block) for block in blocks]
    for batch, xs in zip(batches, solved):
        for (key, _, _, _, _), xv in zip(batch, xs):
            xv = float(xv)
            _mva_cache.put(key, xv)
            out[key] = xv
    return out


class _FlowCell:
    """One (profile, machine, allocation) cell of the shadow fixed point.

    The solve is split into externally steppable phases so one driver
    loop can interleave many cells:

    * :meth:`assemble` refreshes the load-dependent station demands
      against the current utilisation state and returns the chain rows
      whose MVA solution is not already memoized;
    * :meth:`absorb` hands back the solved throughputs;
    * :meth:`update` applies the damped Jacobi step, returning ``True``
      once converged (a watchdog trip raises, exactly as the historical
      single-cell loop did, unless this is the final ladder rung);
    * :meth:`finalize` turns the fixed point into a :class:`FlowResult`.

    Every floating-point operation — including the iteration order of
    the utilisation sums — matches the historical inline loop, which is
    what makes batch solves bit-compatible with scalar ones.
    """

    def __init__(self, profile: MemoryProfile, machine: Machine,
                 alloc: CoreAllocation, *, solver: str, damping: float,
                 policy: ConvergencePolicy,
                 accept_nonconverged: bool) -> None:
        self.profile = profile
        self.solver = solver
        self.damping = damping
        self.accept_nonconverged = accept_nonconverged
        n = alloc.n_active
        counts = alloc.cores_per_processor()
        active = alloc.active_processors()
        freq = machine.frequency

        # --- workload aggregates under this allocation -----------------------
        share = cross_package_share(alloc)
        r = profile.llc_misses + profile.cross_package_miss_growth * share
        check_positive("off-chip requests", r)
        w_eff = profile.work_cycles * (
            1.0 + profile.smt_work_inflation * smt_paired_fraction(alloc))
        b_eff = profile.base_stall_cycles * (
            1.0 - profile.cache_bonus * (1.0 - 1.0 / n))
        episodes = r / profile.mlp
        think = (w_eff + b_eff) / episodes
        amp = profile.write_amplification

        groups = _controller_groups(machine)
        # Effective station SCV: Allen-Cunneen style blend of service
        # variability (row hit/conflict) and traffic burstiness.
        ca2 = profile.burst.arrival_scv
        for g in groups.values():
            g["scv_eff"] = min(0.5 * (g["scv"] + ca2), _SCV_CAP)

        is_uma = machine.architecture is MemoryArchitecture.UMA

        # Visit probabilities: thread-private data (first-touch) stays on
        # the requesting core's own processor; the shared fraction spreads
        # over active processors proportionally to their core counts
        # (first-touch under the paper's fixed thread count places data
        # where threads run).  UMA machines send everything to the one
        # shared group.
        sdf = profile.shared_data_fraction

        def visits(p: int) -> dict[str, float]:
            if is_uma:
                return {"mc": 1.0}
            out = {f"mc{q}": sdf * counts[q] / n for q in active}
            out[f"mc{p}"] = out.get(f"mc{p}", 0.0) + (1.0 - sdf)
            return out

        bus_cycles = 0.0
        if is_uma:
            bus = machine.processors[0].bus
            assert bus is not None
            bus_cycles = bus.transfer_cycles(freq)
        link_cycles = 0.0
        if machine.interconnect is not None:
            link_cycles = freq.cycles_in(
                machine.interconnect.link_transfer_ns() * 1e-9)
        # Coherence probes fan out to every active core, so the protocol
        # traffic riding on each remote line grows smoothly with how far
        # the allocation extends beyond the first package (Magny-Cours
        # broadcast probes; QPI snoops).  Per-core rather than per-package
        # growth keeps the measured cross-package curve close to linear —
        # which is also what the paper's near-linear measured segments
        # show.
        cpp0 = machine.processors[0].n_logical_cores
        if machine.n_cores > cpp0:
            span = max(n - cpp0, 0) / (machine.n_cores - cpp0)
        else:
            span = 0.0
        penalty_eff = profile.remote_penalty * span

        # --- shadow-utilisation fixed point ----------------------------------
        contrib: dict[tuple[int, str], float] = {
            (p, gname): 0.0 for p in active for gname in visits(p)}
        if not is_uma and link_cycles > 0.0:
            # Incoming remote lines occupy the destination processor's
            # port: chains are coupled through the ports exactly like
            # through the controllers.
            for p in active:
                for q in active:
                    if q != p:
                        contrib[(q, f"port{p}")] = 0.0
        x_proc: dict[int, float] = {p: 0.0 for p in active}
        residence_mem: dict[int, float] = {p: 0.0 for p in active}

        # --- chain templates --------------------------------------------------
        # Station values that do not move during the fixed point (think
        # time, bus demand, idle-latency delay, port base demand, SCVs)
        # are assembled once; each Jacobi iteration only refreshes the
        # load-dependent controller-group and port demands in the
        # preallocated row.
        own_bg_weight = 1.0 - 1.0 / amp
        chains: list[dict] = []
        for p in active:
            v = {g: vq for g, vq in visits(p).items() if vq > 0.0}
            fixed_delay = 0.0
            svc_scale: dict[str, float] = {}
            for gname, vq in v.items():
                g = groups[gname]
                dst = g["processor"]
                # Remote requests occupy the home controller longer than
                # local ones: the directory/probe handling, the snoop
                # round trip holding the transaction open, and the poor
                # row locality of an alien stream.  ``remote_penalty``
                # (the second calibration knob) scales that extra
                # occupancy per workload; it grows with the allocation's
                # span because probe fan-out does.
                svc_scale[gname] = 1.0 + penalty_eff \
                    if (dst is not None and dst != p) else 1.0
                # Idle access latency is paid once per episode
                # (overlapped requests pipeline behind the first), plus
                # interconnect hops for remote visits.
                fixed_delay += vq * g["latency"]
                if dst is not None:
                    fixed_delay += vq * _hop_cycles(machine, p, dst)
            port_base = 0.0
            if link_cycles > 0.0 and penalty_eff > 0.0:
                # Remote lines, their write-back companions and the
                # coherence messages riding with them occupy this
                # processor's interconnect port for one transfer per hop.
                # ``remote_penalty`` scales the occupancy per workload —
                # the hop structure (adjacent vs diagonal packages)
                # stays, which is what makes the homogeneous-latency
                # model variant lose accuracy on this machine.  (The
                # remote *share* and the hop mix already grow with the
                # span, so the port cost per core stays near-constant
                # within a package — the near-linear segments of the
                # paper's curves.)
                port_base = sum(
                    vq * _hops_between(machine, p, groups[gname]["processor"])
                    for gname, vq in v.items()
                    if groups[gname]["processor"] is not None
                    and groups[gname]["processor"] != p
                ) * profile.mlp * link_cycles * penalty_eff
            demands = [think]
            is_queue = [False]
            scvs = [1.0]
            if is_uma:
                # Write-backs and prefetches cross the front-side bus too.
                demands.append(profile.mlp * amp * bus_cycles)
                is_queue.append(True)
                scvs.append(1.0)
            group_idx: dict[str, int] = {}
            for gname in v:
                group_idx[gname] = len(demands)
                demands.append(0.0)
                is_queue.append(True)
                scvs.append(groups[gname]["scv_eff"])
            if fixed_delay > 0.0:
                demands.append(fixed_delay)
                is_queue.append(False)
                scvs.append(1.0)
            port_idx = None
            if port_base > 0.0:
                port_idx = len(demands)
                demands.append(0.0)
                is_queue.append(True)
                scvs.append(1.0)
            chains.append({
                "p": p, "pop": counts[p], "visits": v, "svc_scale": svc_scale,
                "demands": np.array(demands), "is_queue": np.array(is_queue),
                "scv": np.array(scvs), "group_idx": group_idx,
                "port_idx": port_idx, "port_base": port_base,
            })
        width = max(len(c["demands"]) for c in chains)

        #: Per-chain throughput function of the active degradation rung.
        self.batch_solver = {
            "exact": exact_throughputs,
            "schweitzer": schweitzer_throughputs,
            "bounds": bound_throughputs,
        }[solver]

        self.prev_delta: dict[tuple[int, str], float] | None = None
        self.jumps = 0
        self.dog = Watchdog(FLOW_SITE, max_iterations=policy.max_iterations,
                            time_budget_s=policy.time_budget_s)

        self.n = n
        self.counts = counts
        self.active = active
        self.r = r
        self.w_eff = w_eff
        self.b_eff = b_eff
        self.think = think
        self.amp = amp
        self.groups = groups
        self.link_cycles = link_cycles
        self.penalty_eff = penalty_eff
        self.own_bg_weight = own_bg_weight
        self.chains = chains
        self.width = width
        self.contrib = contrib
        self.x_proc = x_proc
        self.residence_mem = residence_mem
        self.n_processors = machine.n_processors
        self._loaded: dict[str, float] = {}
        self._pending: dict[tuple, list[int]] = {}
        self._solved: list[float | None] = []

    def assemble(self) -> list[tuple]:
        """One Jacobi assembly against the current utilisation state.

        Every processor's network is refreshed against the *previous*
        state, then all contributions update together in :meth:`update`
        (sequential Gauss-Seidel updates would break the symmetry
        between identical processors and drift toward a spurious
        winner-takes-all fixed point).  Rows are sorted into a canonical
        station order (only the throughput is consumed, which does not
        depend on it) so symmetric processors produce bitwise-equal rows
        and collapse to a single solve.  Returns the rows that missed
        the MVA memo and still need solving.
        """
        contrib = self.contrib
        profile = self.profile
        # One insertion-order scan of the shared state replaces the
        # historical per-group dict scans; each group's entries keep
        # their relative order, so the order-sensitive float sums below
        # are unchanged bit for bit.
        by_group: dict[str, list[tuple[int, float]]] = {}
        for (p, g), v in contrib.items():
            by_group.setdefault(g, []).append((p, v))

        def foreign_util(gname: str, me: int) -> float:
            """Load other processors put on a group, as seen by ``me``.

            Individually capped below 1 so the shadow inflation stays
            finite; the fixed point itself keeps the joint utilisation
            physical (overload slows every contributor down).
            """
            other = sum(v for q, v in by_group.get(gname, ()) if q != me)
            return min(other, _RHO_CEILING)

        # Row-locality degradation: service grows with utilisation,
        # quadratically — a lone stream keeps its row locality until the
        # banks are genuinely crowded, so the degradation concentrates
        # near saturation (this also keeps the feedback loop's mid-range
        # gain low enough for a unique fixed point).  Hoisted per
        # iteration: the utilisation state is frozen during assembly.
        loaded: dict[str, float] = {}
        for gname, g in self.groups.items():
            rho = min(sum(v for _, v in by_group.get(gname, ())), 1.0)
            loaded[gname] = g["service"] \
                + (g["service_sat"] - g["service"]) * rho * rho
        self._loaded = loaded

        pending: dict[tuple, list[int]] = {}
        solved: list[float | None] = [None] * len(self.chains)
        rows: list[tuple] = []
        for i, c in enumerate(self.chains):
            p = c["p"]
            d = c["demands"].copy()
            for gname, idx in c["group_idx"].items():
                # Blocking demand misses compete with every foreign
                # stream *and* with this processor's own non-blocking
                # background traffic (write-backs, prefetches).
                # A chain's own write-back/prefetch background delays its
                # demand reads far less than foreign traffic does: real
                # controllers drain writebacks in read-idle gaps
                # (read-priority scheduling), so it enters the busy term
                # with a small weight.
                own_background = contrib[(p, gname)] * self.own_bg_weight
                busy = min(foreign_util(gname, p) + 0.25 * own_background,
                           _RHO_CEILING)
                inflate = 1.0 + _CONGESTION_GAIN * busy
                d[idx] = c["visits"][gname] * profile.mlp \
                    * loaded[gname] * c["svc_scale"][gname] * inflate
            if c["port_idx"] is not None:
                # Other chains' lines terminating here occupy this port
                # as well; their utilisation inflates the local view like
                # a foreign controller load.
                incoming = min(foreign_util(f"port{p}", p), _RHO_CEILING)
                d[c["port_idx"]] = c["port_base"] \
                    * (1.0 + _CONGESTION_GAIN * incoming)
            order = np.lexsort((c["scv"], d, c["is_queue"]))
            d = d[order]
            iq = c["is_queue"][order]
            sv = c["scv"][order]
            if len(d) < self.width:
                pad = self.width - len(d)
                d = np.concatenate([d, np.zeros(pad)])
                iq = np.concatenate([iq, np.zeros(pad, dtype=bool)])
                sv = np.concatenate([sv, np.ones(pad)])
            key = ("chain", self.solver, c["pop"],
                   d.tobytes(), iq.tobytes(), sv.tobytes())
            cached = _mva_cache.get(key)
            if cached is not _MISS:
                solved[i] = cached
            elif key in pending:
                pending[key].append(i)
            else:
                pending[key] = [i]
                rows.append((key, c["pop"], d, iq, sv))
        self._pending = pending
        self._solved = solved
        return rows

    def absorb(self, solutions: dict) -> None:
        """Distribute solved throughputs onto this cell's pending chains."""
        for key, idxs in self._pending.items():
            xv = solutions[key]
            for i in idxs:
                self._solved[i] = xv

    def update(self) -> bool:
        """Apply one damped Jacobi step; ``True`` once converged.

        A watchdog trip raises :class:`SolverError` unless this cell is
        the final ladder rung (``accept_nonconverged``), in which case
        the last iterate is accepted on the record — a degraded-but-
        bounded answer beats a raise or a hang.
        """
        profile = self.profile
        loaded = self._loaded
        solved = self._solved
        contrib = self.contrib
        proposed: dict[tuple[int, str], float] = {}
        for i, c in enumerate(self.chains):
            p = c["p"]
            x_new = solved[i]
            self.x_proc[p] = x_new
            self.residence_mem[p] = c["pop"] / x_new - self.think
            for gname, vq in c["visits"].items():
                # Channel occupancy includes the non-blocking write-back
                # / prefetch traffic that rides along with each demand
                # miss, and the extra occupancy of remote requests.
                proposed[(p, gname)] = \
                    x_new * vq * profile.mlp * self.amp * loaded[gname] \
                    * c["svc_scale"][gname]
                dst = self.groups[gname]["processor"]
                if self.link_cycles > 0.0 and self.penalty_eff > 0.0 \
                        and dst is not None and dst != p:
                    # Occupancy this chain's remote lines impose on the
                    # *destination* processor's port (a line terminates
                    # there exactly once, however many hops it crossed).
                    proposed[(p, f"port{dst}")] = \
                        x_new * vq * profile.mlp * self.link_cycles \
                        * self.penalty_eff
        max_delta = 0.0
        delta: dict[tuple[int, str], float] = {}
        for key, new_val in proposed.items():
            old_val = contrib[key]
            # Damped for stability; retries escalate to heavier damping
            # (smaller new-value weight).
            updated = (1.0 - self.damping) * old_val \
                + self.damping * new_val
            d_val = updated - old_val
            delta[key] = d_val
            max_delta = max(max_delta, abs(d_val))
            contrib[key] = updated
        if max_delta < 1e-9:
            return True
        try:
            self.dog.tick(max_delta)
        except SolverError as exc:
            if not self.accept_nonconverged:
                raise
            # Final ladder rung: accept the last iterate, on the record.
            record_event(DegradationEvent(
                site=FLOW_SITE, action="gave_up", from_stage=self.solver,
                to_stage=self.solver, detail=exc.message))
            return True
        if self.prev_delta is not None and self.jumps < _TAIL_MAX_JUMPS \
                and max_delta < _TAIL_DELTA:
            if _tail_jump(contrib, delta, self.prev_delta):
                self.jumps += 1
                self.prev_delta = None
                return False
        self.prev_delta = delta
        return False

    def finalize(self) -> FlowResult:
        """Counter bookkeeping of the converged fixed point."""
        profile = self.profile
        contrib = self.contrib

        def group_util(gname: str) -> float:
            """Reported utilisation of a group (capped at the physical 1.0)."""
            return min(
                sum(v for (p, g), v in contrib.items() if g == gname), 1.0)

        episodes_per_core = self.r / (self.n * profile.mlp)
        per_core = [0.0] * self.n_processors
        memory_stall = 0.0
        for p in self.active:
            cycle_time = self.think + self.residence_mem[p]
            per_core[p] = episodes_per_core * cycle_time
            memory_stall += self.counts[p] * episodes_per_core \
                * self.residence_mem[p]
        total = self.w_eff + self.b_eff + memory_stall

        return FlowResult(
            n_active=self.n,
            total_cycles=total,
            work_cycles=self.w_eff,
            base_stall_cycles=self.b_eff,
            memory_stall_cycles=memory_stall,
            llc_misses=self.r,
            instructions=profile.instructions,
            per_core_cycles=tuple(per_core),
            controller_utilisation={g: group_util(g) for g in self.groups},
            solver_stage=self.solver,
        )


def _tail_jump(contrib: dict, delta: dict, prev_delta: dict) -> bool:
    """Extrapolate the geometric tail of the damped fixed point.

    Estimates the common contraction ratio ``r`` from two consecutive
    delta vectors (least squares) and, when every significant key agrees
    with it, adds the remaining series ``delta * r / (1 - r)`` to each
    contribution.  Returns whether the jump was applied.
    """
    num = 0.0
    den = 0.0
    for key, pd in prev_delta.items():
        num += delta.get(key, 0.0) * pd
        den += pd * pd
    if den <= 0.0:
        return False
    ratio = num / den
    if not _TAIL_RATIO_LO <= ratio <= _TAIL_RATIO_HI:
        return False
    significant = max(abs(pd) for pd in prev_delta.values()) * 0.05
    for key, d_val in delta.items():
        pd = prev_delta.get(key, 0.0)
        if abs(pd) <= significant:
            continue
        if abs(d_val - ratio * pd) > _TAIL_RATIO_TOL * abs(pd):
            return False
    gain = ratio / (1.0 - ratio)
    for key, d_val in delta.items():
        contrib[key] = max(contrib[key] + d_val * gain, 0.0)
    return True


# -- sweep-batched driver -----------------------------------------------------


def batch_solve_enabled() -> bool:
    """Whether drivers should route sweeps through the batch kernel.

    Controlled by the ``REPRO_BATCH_SOLVE`` environment switch (default
    on), mirroring the ``REPRO_PERF_CACHE`` convention; results are
    bit-identical either way, so the switch only trades wall time.
    """
    return os.environ.get("REPRO_BATCH_SOLVE", "1") not in ("0", "false", "")


def solve_flow_batch(profile: MemoryProfile, machine: Machine,
                     allocations: "Sequence[CoreAllocation]",
                     policy: ConvergencePolicy | None = None
                     ) -> list[FlowResult]:
    """Solve one profile/machine for many allocations in lock-step.

    The sweep-shaped convenience form of :func:`solve_flow_cells`;
    results are returned in allocation order and are bit-identical to
    calling :func:`solve_flow` per allocation.
    """
    return solve_flow_cells(
        [(profile, machine, alloc) for alloc in allocations], policy)


def solve_flow_cells(
        cells: "Iterable[tuple[MemoryProfile, Machine, CoreAllocation]]",
        policy: ConvergencePolicy | None = None) -> list[FlowResult]:
    """Solve many (profile, machine, allocation) cells in lock-step.

    Each round pools every unconverged cell's pending chain rows into
    stacked MVA batches (grouped by station width, deduplicated by
    content key), then steps every cell once; converged cells freeze
    while stragglers keep iterating.  The perf cache is consulted
    per-cell first, only misses are solved, and solutions are
    back-filled, so a batch interleaves with scalar calls exactly like a
    sequential sweep would.  Cells the batch attempt cannot converge —
    and whole batches under an armed fault injection or a ladder that
    does not open on the exact rung — fall through to the scalar
    resilience path with its full retry/degradation semantics.

    Under telemetry the whole batch is timed into
    ``latency.flow.batch_seconds`` and each cell lands one amortized
    observation in ``latency.flow.solve_seconds`` (the per-cell latency
    SLO keeps one observation per cell, whichever path solved it);
    ``perf.batch.cells`` / ``perf.batch.fallbacks`` count the routing.
    """
    cells = list(cells)
    if not cells:
        return []
    tel = _obs_state._active
    if tel is None:
        return _solve_flow_cells(cells, policy)
    timer = tel.metrics.timer(_names.LATENCY_FLOW_BATCH_SECONDS)
    before = timer.sum
    with timer:
        results = _solve_flow_cells(cells, policy)
    # Amortized per-cell latency, read back from the timer instrument
    # itself: model code takes no wall-clock reads of its own.
    each = (timer.sum - before) / len(cells)
    per_cell = tel.metrics.timer(_names.LATENCY_FLOW_SOLVE_SECONDS)
    for _ in range(len(cells)):
        per_cell.observe(each)
    return results


def _solve_flow_cells(
        cells: "list[tuple[MemoryProfile, Machine, CoreAllocation]]",
        policy: ConvergencePolicy | None) -> list[FlowResult]:
    tel = _obs_state._active
    armed = faultinject.solver_fault_armed(FLOW_SITE)
    use_cache = policy is None and not armed
    pol = policy if policy is not None else DEFAULT_POLICY
    attempts = pol.attempts()
    first_solver, first_damping = attempts[0]
    if tel is not None:
        tel.metrics.counter(_names.PERF_BATCH_CELLS).inc(len(cells))
    if armed or first_solver != "exact":
        # Fault plans consume one entry per solve attempt, and ladders
        # that do not open on the exact rung cannot batch (Schweitzer
        # couples its convergence residual across rows, so pooling cells
        # would change results): route every cell through the scalar
        # entry so attempt accounting and degradation semantics stay
        # exact.
        if tel is not None:
            tel.metrics.counter(_names.PERF_BATCH_FALLBACKS).inc(len(cells))
        return [_solve_flow_entry(p, m, a, policy) for p, m, a in cells]

    results: list[FlowResult | None] = [None] * len(cells)
    keys: list[object | None] = [None] * len(cells)
    followers: dict[object, list[int]] = {}
    solve_idx: list[int] = []
    for i, (profile, machine, alloc) in enumerate(cells):
        if alloc.machine is not machine and alloc.machine != machine:
            raise ValidationError(
                "allocation was built for a different machine")
        if use_cache:
            key = _flow_key(profile, machine, alloc)
            keys[i] = key
            hit = _flow_cache.get(key)
            if hit is not _MISS:
                results[i] = _copy_cached(hit)
                continue
            if key in followers:
                # Duplicate cell within this batch: solve the first
                # occurrence only and resolve the follower through the
                # cache afterwards, so hit/solve accounting matches a
                # sequential scalar sweep.
                followers[key].append(i)
                continue
            followers[key] = []
        solve_idx.append(i)

    live: dict[int, _FlowCell] = {}
    for i in solve_idx:
        profile, machine, alloc = cells[i]
        if tel is not None:
            tel.metrics.counter(_names.RUNTIME_FLOW_SOLVES).inc()
        live[i] = _FlowCell(profile, machine, alloc, solver=first_solver,
                            damping=first_damping, policy=pol,
                            accept_nonconverged=len(attempts) == 1)

    fallback: list[int] = []
    while live:
        rows: dict[tuple, tuple] = {}
        for cell in live.values():
            for row in cell.assemble():
                rows.setdefault(row[0], row)
        solutions = _solve_rows(exact_throughputs, list(rows.values())) \
            if rows else {}
        done: list[int] = []
        for i, cell in live.items():
            cell.absorb(solutions)
            try:
                converged = cell.update()
            except SolverError:
                # The straggler re-enters the scalar resilience ladder
                # from attempt 0: identical retries, damping escalation,
                # degradation events and counters as a scalar call.  The
                # abandoned batch attempt recorded nothing and left only
                # warm MVA memo entries behind (bit-identical to the
                # ones the scalar rerun is about to want).
                fallback.append(i)
                done.append(i)
                continue
            if converged:
                result = cell.finalize()
                results[i] = result
                if use_cache:
                    _flow_cache.put(keys[i], result)
                done.append(i)
        for i in done:
            del live[i]

    if fallback and tel is not None:
        tel.metrics.counter(_names.PERF_BATCH_FALLBACKS).inc(len(fallback))
    for i in fallback:
        profile, machine, alloc = cells[i]
        result = _solve_flow_resilient(profile, machine, alloc, pol)
        if use_cache:
            _flow_cache.put(keys[i], result)
        results[i] = result

    if use_cache:
        for key, idxs in followers.items():
            for i in idxs:
                hit = _flow_cache.get(key)
                if hit is not _MISS:
                    results[i] = _copy_cached(hit)
                else:
                    # The cache was disabled or evicted under us; solve
                    # the duplicate the way a scalar sweep would have.
                    p, m, a = cells[i]
                    results[i] = _solve_flow_entry(p, m, a, policy)
    return cast("list[FlowResult]", results)
