"""Closed queueing-network solver for simulated program execution.

Model
-----
The ``r`` off-chip requests of a run are grouped into *stall episodes* of
``mlp`` overlapping requests.  Each active core cycles through:

1. a **think** (delay) station — the compute cycles between episodes,
   ``Z = (W + B) / episodes``;
2. (UMA) its processor's **front-side bus** — an FCFS station serialising
   the episode's ``mlp`` line transfers;
3. a **memory-controller group** — the target processor's controllers
   pooled into one station whose rate is ``channels / mean_service``;
   under the paper's homogeneous-affinity assumption a core on processor
   ``p`` visits processor ``q``'s group with probability ``n_q / n``;
4. (NUMA) an **interconnect delay** — the hop latency toward the visited
   controller, paid once per episode (the overlapped requests pipeline
   behind the first).

Cores of each processor form one closed chain solved by exact MVA;
processors sharing controller groups are coupled by a shadow-server fixed
point (a foreign load of utilisation ``rho`` inflates the local view of
the service demand by ``1/(1 - rho)``).

Outputs are the paper's counters: total cycles across cores, work cycles,
stall cycles and LLC misses, with cycle bookkeeping exact by construction:
``total = W + B + memory_stall``.

Fast path
---------
Three layers keep repeated solves cheap (see docs/PERFORMANCE.md):

* whole solves are memoized in :data:`repro.perf.flow_cache`, keyed on
  the content hash of (machine, profile, allocation);
* within the shadow fixed point, each Jacobi iteration assembles every
  processor's chain into one ``[chains, stations]`` batch — rows are
  canonically sorted and bitwise-deduplicated (symmetric processors
  collapse to a single MVA solve) and individual chain solutions are
  memoized in :data:`repro.perf.mva_cache`;
* once the damped iteration is in its geometric tail, the remaining
  distance to the fixed point is extrapolated in one jump instead of
  being iterated out (the loop still runs to the usual tolerance, so the
  fixed point reached is the same to within it).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.machine.allocation import CoreAllocation
from repro.machine.topology import Machine, MemoryArchitecture
from repro.obs import names as _names, state as _obs_state
from repro.perf.cache import (
    MISS as _MISS,
    flow_cache as _flow_cache,
    mva_cache as _mva_cache,
)
from repro.perf.keys import flow_key as _flow_key
from repro.qnet.mva import (
    bound_throughputs,
    exact_throughputs,
    schweitzer_throughputs,
)
from repro.resilience import faultinject
from repro.resilience.degrade import DegradationEvent, record_event
from repro.resilience.errors import SolverError
from repro.resilience.watchdog import DEFAULT_POLICY, ConvergencePolicy, Watchdog
from repro.util.validation import ValidationError, check_positive
from repro.workloads.base import MemoryProfile

#: The solver site name used in watchdog raises, degradation events and
#: fault-injection plans for this module's shadow fixed point.
FLOW_SITE = "runtime.flow"

#: Congestion gain of the shadow coupling: a station loaded by a
#: foreign/background busy fraction ``b`` looks ``(1 + GAIN * b)`` times
#: slower to the local chain.  The bounded linear law replaces the
#: open-queue pole ``1/(1 - b)``: the pole, combined with load-dependent
#: service, makes the coupled fixed point bistable — omega(r) would jump
#: discontinuously between branches instead of growing smoothly the way
#: the paper's measured curves do.
_CONGESTION_GAIN = 20.0
_RHO_CEILING = 0.98  # cap on busy fractions entering the linear law
#: Cap on the effective station SCV fed to the AMVA residual correction.
_SCV_CAP = 8.0

#: Geometric-tail extrapolation of the damped fixed point.  The 0.5-damped
#: Jacobi update converges linearly, so near the fixed point the per-key
#: deltas form a geometric series with a common ratio ``r``; once the
#: deltas are small (asymptotic regime) and the ratio is stable across
#: keys, the remaining tail ``delta * r / (1 - r)`` is added in one jump.
#: The loop still only exits at the usual 1e-9 tolerance, so a bad jump
#: costs iterations rather than accuracy.
_TAIL_DELTA = 1e-2       # only extrapolate once max_delta is below this
_TAIL_MAX_JUMPS = 6
_TAIL_RATIO_LO = 0.05    # reject non-contracting or alternating tails
_TAIL_RATIO_HI = 0.95
_TAIL_RATIO_TOL = 0.15   # per-key deviation allowed from the common ratio


@dataclass(frozen=True)
class FlowResult:
    """Counter-level outcome of one simulated (noise-free) run."""

    n_active: int
    total_cycles: float
    work_cycles: float
    base_stall_cycles: float
    memory_stall_cycles: float
    llc_misses: float
    instructions: float
    per_core_cycles: tuple[float, ...]      # indexed by processor
    controller_utilisation: dict[str, float]
    #: Which rung of the degradation ladder produced this result
    #: ("exact" unless the fixed point degraded; see docs/RESILIENCE.md).
    solver_stage: str = "exact"

    def __post_init__(self) -> None:
        # A result must describe at least one processor: an empty tuple
        # would make ``makespan_cycles`` raise a bare ``max()`` error far
        # from the construction site that caused it.
        if not self.per_core_cycles:
            raise ValidationError(
                "per_core_cycles must be non-empty: a FlowResult needs at "
                "least one processor (zero-active-core allocations are "
                "rejected upstream)")

    @property
    def stall_cycles(self) -> float:
        """PAPI_RES_STL: all stalls (base plus off-chip memory)."""
        return self.base_stall_cycles + self.memory_stall_cycles

    @property
    def makespan_cycles(self) -> float:
        """Wall-clock of the slowest processor's cores, in cycles.

        ``per_core_cycles`` is guaranteed non-empty at construction, so
        this never raises.
        """
        return max(self.per_core_cycles)


def cross_package_share(alloc: CoreAllocation) -> float:
    """Fraction of requests that leave the requesting core's processor.

    Zero while the allocation stays on one package; under homogeneous
    affinity it equals ``1 - local_fraction`` beyond that.
    """
    if len(alloc.active_processors()) <= 1:
        return 0.0
    return 1.0 - alloc.local_fraction()


def smt_paired_fraction(alloc: CoreAllocation) -> float:
    """Fraction of active logical cores whose SMT sibling is also active."""
    active = set(alloc.active_core_ids)
    cores = alloc.machine.cores()
    paired = sum(
        1 for cid in active
        if cores[cid].smt_sibling is not None and cores[cid].smt_sibling in active
    )
    return paired / len(active)


def _controller_groups(machine: Machine) -> dict[str, dict]:
    """Pool controllers into station groups.

    UMA: one shared group.  NUMA: one group per processor (its controllers
    pooled), keyed ``"mc<p>"``.  Each group records the pooled service
    time per request and its service-time SCV.
    """
    freq = machine.frequency
    groups: dict[str, dict] = {}
    if machine.architecture is MemoryArchitecture.UMA:
        ctl = machine.shared_controller
        assert ctl is not None
        groups["mc"] = {
            "processor": None,
            "service": ctl.dram.mean_service_cycles(freq) / ctl.dram.channels,
            "service_sat": ctl.dram.mean_service_cycles_at(freq, 1.0)
            / ctl.dram.channels,
            "scv": ctl.dram.service_scv(),
            "latency": ctl.dram.idle_latency_cycles(freq),
        }
        return groups
    for proc in machine.processors:
        total_channels = sum(c.dram.channels for c in proc.controllers)
        # Controllers of one processor have identical DRAM in our presets;
        # average defensively in case a custom machine mixes them.
        mean_service = sum(
            c.dram.mean_service_cycles(freq) for c in proc.controllers
        ) / len(proc.controllers)
        mean_service_sat = sum(
            c.dram.mean_service_cycles_at(freq, 1.0) for c in proc.controllers
        ) / len(proc.controllers)
        scv = sum(c.dram.service_scv() for c in proc.controllers) \
            / len(proc.controllers)
        groups[f"mc{proc.index}"] = {
            "processor": proc.index,
            "service": mean_service / total_channels,
            "service_sat": mean_service_sat / total_channels,
            "scv": scv,
            "latency": sum(
                c.dram.idle_latency_cycles(freq) for c in proc.controllers
            ) / len(proc.controllers),
        }
    return groups


def _hops_between(machine: Machine, src_proc: int, dst_proc: int) -> float:
    """Mean hop count between two processors' controller sets."""
    if machine.interconnect is None or src_proc == dst_proc:
        return 0.0
    src = [c.controller_id for c in machine.processors[src_proc].controllers]
    dst = [c.controller_id for c in machine.processors[dst_proc].controllers]
    return sum(machine.interconnect.hops(a, b) for a in src for b in dst) \
        / (len(src) * len(dst))


def _hop_cycles(machine: Machine, src_proc: int, dst_proc: int) -> float:
    """Interconnect latency (cycles) between two processors' controllers."""
    if machine.interconnect is None or src_proc == dst_proc:
        return 0.0
    src = [c.controller_id for c in machine.processors[src_proc].controllers]
    dst = [c.controller_id for c in machine.processors[dst_proc].controllers]
    ns = sum(machine.interconnect.latency_ns(a, b) for a in src for b in dst) \
        / (len(src) * len(dst))
    return machine.frequency.cycles_in(ns * 1e-9)


def solve_flow(profile: MemoryProfile, machine: Machine,
               alloc: CoreAllocation,
               policy: ConvergencePolicy | None = None) -> FlowResult:
    """Solve the closed network for one allocation; see module docstring.

    Results are memoized in :data:`repro.perf.flow_cache`; a repeat solve
    of an identical (machine, profile, allocation) triple returns a copy
    of the cached result (``runtime.flow.solves`` counts actual solves,
    ``perf.cache.flow.hits`` the memoized returns).

    The shadow fixed point runs under a convergence watchdog and the
    degradation ladder of ``policy`` (default
    :data:`repro.resilience.DEFAULT_POLICY`): a non-converging attempt
    is retried with escalated damping, then degraded exact MVA →
    Schweitzer AMVA → asymptotic bounds.  Every fall is recorded via
    :func:`repro.resilience.record_event` (surfaced in experiment
    notes) and the producing rung is on ``FlowResult.solver_stage``.
    The cache is bypassed while a non-default policy or a fault
    injection targeting :data:`FLOW_SITE` is active, so degraded
    results from injected faults are never memoized.

    Under telemetry, every call — memoized or not — lands one
    observation in the ``latency.flow.solve_seconds`` histogram: the
    per-cell latency a caller actually experiences, which is what the
    service-level p99 gate watches.
    """
    tel = _obs_state._active
    if tel is None:
        return _solve_flow_entry(profile, machine, alloc, policy)
    with tel.metrics.timer(_names.LATENCY_FLOW_SOLVE_SECONDS):
        return _solve_flow_entry(profile, machine, alloc, policy)


def _solve_flow_entry(profile: MemoryProfile, machine: Machine,
                      alloc: CoreAllocation,
                      policy: ConvergencePolicy | None) -> FlowResult:
    if alloc.machine is not machine and alloc.machine != machine:
        raise ValidationError("allocation was built for a different machine")
    use_cache = policy is None and not faultinject.solver_fault_armed(FLOW_SITE)
    pol = policy if policy is not None else DEFAULT_POLICY
    key = _flow_key(profile, machine, alloc) if use_cache else None
    if use_cache:
        hit = _flow_cache.get(key)
        if hit is not _MISS:
            # The result dataclass is frozen but holds one mutable dict;
            # hand each caller its own copy.
            return replace(
                hit, controller_utilisation=dict(hit.controller_utilisation))
    tel = _obs_state._active
    if tel is not None:
        tel.metrics.counter(_names.RUNTIME_FLOW_SOLVES).inc()
    result = _solve_flow_resilient(profile, machine, alloc, pol)
    if use_cache:
        _flow_cache.put(key, result)
    return result


def _solve_flow_resilient(profile: MemoryProfile, machine: Machine,
                          alloc: CoreAllocation,
                          policy: ConvergencePolicy) -> FlowResult:
    """Run the attempt schedule of ``policy`` until a rung produces.

    The final rung accepts its last iterate instead of raising, so with
    the default ladder (ending in ``bounds``) this always returns; a
    custom ladder whose last rung still fails propagates that failure.
    """
    attempts = policy.attempts()
    tel = _obs_state._active
    last_error: SolverError | None = None
    for i, (solver, damping) in enumerate(attempts):
        final = i == len(attempts) - 1
        try:
            faultinject.maybe_fail_solver(FLOW_SITE, attempt=i)
            return _solve_flow(profile, machine, alloc, solver=solver,
                               damping=damping, policy=policy,
                               accept_nonconverged=final)
        except SolverError as exc:
            last_error = exc
            if tel is not None:
                tel.metrics.counter(_names.RUNTIME_FLOW_NONCONVERGED).inc()
            if final:
                raise
            next_solver, next_damping = attempts[i + 1]
            if next_solver == solver:
                record_event(DegradationEvent(
                    site=FLOW_SITE, action="retry", from_stage=solver,
                    to_stage=next_solver,
                    detail=f"escalating damping {damping:g} -> "
                           f"{next_damping:g}: {exc.message}"))
            else:
                record_event(DegradationEvent(
                    site=FLOW_SITE, action="degrade", from_stage=solver,
                    to_stage=next_solver, detail=exc.message))
    raise last_error if last_error else AssertionError("empty schedule")


def _solve_flow(profile: MemoryProfile, machine: Machine,
                alloc: CoreAllocation, *, solver: str = "exact",
                damping: float = 0.5,
                policy: ConvergencePolicy = DEFAULT_POLICY,
                accept_nonconverged: bool = False) -> FlowResult:
    n = alloc.n_active
    counts = alloc.cores_per_processor()
    active = alloc.active_processors()
    freq = machine.frequency

    # --- workload aggregates under this allocation ---------------------------
    share = cross_package_share(alloc)
    r = profile.llc_misses + profile.cross_package_miss_growth * share
    check_positive("off-chip requests", r)
    w_eff = profile.work_cycles * (
        1.0 + profile.smt_work_inflation * smt_paired_fraction(alloc))
    b_eff = profile.base_stall_cycles * (
        1.0 - profile.cache_bonus * (1.0 - 1.0 / n))
    episodes = r / profile.mlp
    think = (w_eff + b_eff) / episodes
    amp = profile.write_amplification

    groups = _controller_groups(machine)
    # Effective station SCV: Allen-Cunneen style blend of service
    # variability (row hit/conflict) and traffic burstiness.
    ca2 = profile.burst.arrival_scv
    for g in groups.values():
        g["scv_eff"] = min(0.5 * (g["scv"] + ca2), _SCV_CAP)

    is_uma = machine.architecture is MemoryArchitecture.UMA

    # Visit probabilities: thread-private data (first-touch) stays on the
    # requesting core's own processor; the shared fraction spreads over
    # active processors proportionally to their core counts (first-touch
    # under the paper's fixed thread count places data where threads run).
    # UMA machines send everything to the one shared group.
    sdf = profile.shared_data_fraction

    def visits(p: int) -> dict[str, float]:
        if is_uma:
            return {"mc": 1.0}
        out = {f"mc{q}": sdf * counts[q] / n for q in active}
        out[f"mc{p}"] = out.get(f"mc{p}", 0.0) + (1.0 - sdf)
        return out

    bus_cycles = 0.0
    if is_uma:
        bus = machine.processors[0].bus
        assert bus is not None
        bus_cycles = bus.transfer_cycles(freq)
    link_cycles = 0.0
    if machine.interconnect is not None:
        link_cycles = freq.cycles_in(
            machine.interconnect.link_transfer_ns() * 1e-9)
    # Coherence probes fan out to every active core, so the protocol
    # traffic riding on each remote line grows smoothly with how far the
    # allocation extends beyond the first package (Magny-Cours broadcast
    # probes; QPI snoops).  Per-core rather than per-package growth keeps
    # the measured cross-package curve close to linear — which is also
    # what the paper's near-linear measured segments show.
    cpp0 = machine.processors[0].n_logical_cores
    if machine.n_cores > cpp0:
        span = max(n - cpp0, 0) / (machine.n_cores - cpp0)
    else:
        span = 0.0
    penalty_eff = profile.remote_penalty * span

    # --- shadow-utilisation fixed point --------------------------------------
    contrib: dict[tuple[int, str], float] = {
        (p, gname): 0.0 for p in active for gname in visits(p)}
    if not is_uma and link_cycles > 0.0:
        # Incoming remote lines occupy the destination processor's port:
        # chains are coupled through the ports exactly like through the
        # controllers.
        for p in active:
            for q in active:
                if q != p:
                    contrib[(q, f"port{p}")] = 0.0
    x_proc: dict[int, float] = {p: 0.0 for p in active}
    residence_mem: dict[int, float] = {p: 0.0 for p in active}

    def group_util(gname: str) -> float:
        """Reported utilisation of a group (capped at the physical 1.0)."""
        return min(sum(v for (p, g), v in contrib.items() if g == gname), 1.0)

    def loaded_service(gname: str) -> float:
        """Row-locality degradation: service grows with utilisation.

        Quadratic in utilisation: a lone stream keeps its row locality
        until the banks are genuinely crowded, so the degradation is
        concentrated near saturation (this also keeps the feedback loop's
        mid-range gain low enough for a unique fixed point).
        """
        g = groups[gname]
        rho = group_util(gname)
        return g["service"] + (g["service_sat"] - g["service"]) * rho * rho

    def foreign_util(gname: str, me: int) -> float:
        """Load other processors put on a group, as seen by ``me``.

        Individually capped below 1 so the shadow inflation stays finite;
        the fixed point itself keeps the joint utilisation physical
        (overload slows every contributor down).
        """
        other = sum(v for (p, g), v in contrib.items()
                    if g == gname and p != me)
        return min(other, _RHO_CEILING)

    # --- chain templates ------------------------------------------------------
    # Station values that do not move during the fixed point (think time,
    # bus demand, idle-latency delay, port base demand, SCVs) are assembled
    # once; each Jacobi iteration only refreshes the load-dependent
    # controller-group and port demands in the preallocated row.
    own_bg_weight = 1.0 - 1.0 / amp
    chains: list[dict] = []
    for p in active:
        v = {g: vq for g, vq in visits(p).items() if vq > 0.0}
        fixed_delay = 0.0
        svc_scale: dict[str, float] = {}
        for gname, vq in v.items():
            g = groups[gname]
            dst = g["processor"]
            # Remote requests occupy the home controller longer than local
            # ones: the directory/probe handling, the snoop round trip
            # holding the transaction open, and the poor row locality of an
            # alien stream.  ``remote_penalty`` (the second calibration
            # knob) scales that extra occupancy per workload; it grows with
            # the allocation's span because probe fan-out does.
            svc_scale[gname] = 1.0 + penalty_eff \
                if (dst is not None and dst != p) else 1.0
            # Idle access latency is paid once per episode (overlapped
            # requests pipeline behind the first), plus interconnect hops
            # for remote visits.
            fixed_delay += vq * g["latency"]
            if dst is not None:
                fixed_delay += vq * _hop_cycles(machine, p, dst)
        port_base = 0.0
        if link_cycles > 0.0 and penalty_eff > 0.0:
            # Remote lines, their write-back companions and the coherence
            # messages riding with them occupy this processor's
            # interconnect port for one transfer per hop.
            # ``remote_penalty`` scales the occupancy per workload — the
            # hop structure (adjacent vs diagonal packages) stays, which
            # is what makes the homogeneous-latency model variant lose
            # accuracy on this machine.  (The remote *share* and the hop
            # mix already grow with the span, so the port cost per core
            # stays near-constant within a package — the near-linear
            # segments of the paper's curves.)
            port_base = sum(
                vq * _hops_between(machine, p, groups[gname]["processor"])
                for gname, vq in v.items()
                if groups[gname]["processor"] is not None
                and groups[gname]["processor"] != p
            ) * profile.mlp * link_cycles * penalty_eff
        demands = [think]
        is_queue = [False]
        scvs = [1.0]
        if is_uma:
            # Write-backs and prefetches cross the front-side bus too.
            demands.append(profile.mlp * amp * bus_cycles)
            is_queue.append(True)
            scvs.append(1.0)
        group_idx: dict[str, int] = {}
        for gname in v:
            group_idx[gname] = len(demands)
            demands.append(0.0)
            is_queue.append(True)
            scvs.append(groups[gname]["scv_eff"])
        if fixed_delay > 0.0:
            demands.append(fixed_delay)
            is_queue.append(False)
            scvs.append(1.0)
        port_idx = None
        if port_base > 0.0:
            port_idx = len(demands)
            demands.append(0.0)
            is_queue.append(True)
            scvs.append(1.0)
        chains.append({
            "p": p, "pop": counts[p], "visits": v, "svc_scale": svc_scale,
            "demands": np.array(demands), "is_queue": np.array(is_queue),
            "scv": np.array(scvs), "group_idx": group_idx,
            "port_idx": port_idx, "port_base": port_base,
        })
    width = max(len(c["demands"]) for c in chains)

    #: Per-chain throughput function of the active degradation rung.
    batch_solver = {
        "exact": exact_throughputs,
        "schweitzer": schweitzer_throughputs,
        "bounds": bound_throughputs,
    }[solver]

    prev_delta: dict[tuple[int, str], float] | None = None
    jumps = 0
    dog = Watchdog(FLOW_SITE, max_iterations=policy.max_iterations,
                   time_budget_s=policy.time_budget_s)
    while True:
        # Jacobi iteration: every processor's network is solved against the
        # *previous* utilisation state, then all contributions update
        # together.  (Sequential Gauss-Seidel updates break the symmetry
        # between identical processors and drift toward a spurious
        # winner-takes-all fixed point.)  All chains are assembled into one
        # batch; rows are sorted into a canonical station order (only the
        # throughput is consumed, which does not depend on it) so that
        # symmetric processors produce bitwise-equal rows and collapse to
        # a single solve.
        batch: list[tuple] = []
        pending: dict[tuple, list[int]] = {}
        solved: list[float | None] = [None] * len(chains)
        for i, c in enumerate(chains):
            p = c["p"]
            d = c["demands"].copy()
            for gname, idx in c["group_idx"].items():
                # Blocking demand misses compete with every foreign stream
                # *and* with this processor's own non-blocking background
                # traffic (write-backs, prefetches).
                # A chain's own write-back/prefetch background delays its
                # demand reads far less than foreign traffic does: real
                # controllers drain writebacks in read-idle gaps
                # (read-priority scheduling), so it enters the busy term
                # with a small weight.
                own_background = contrib[(p, gname)] * own_bg_weight
                busy = min(foreign_util(gname, p) + 0.25 * own_background,
                           _RHO_CEILING)
                inflate = 1.0 + _CONGESTION_GAIN * busy
                d[idx] = c["visits"][gname] * profile.mlp \
                    * loaded_service(gname) * c["svc_scale"][gname] * inflate
            if c["port_idx"] is not None:
                # Other chains' lines terminating here occupy this port as
                # well; their utilisation inflates the local view like a
                # foreign controller load.
                incoming = min(foreign_util(f"port{p}", p), _RHO_CEILING)
                d[c["port_idx"]] = c["port_base"] \
                    * (1.0 + _CONGESTION_GAIN * incoming)
            order = np.lexsort((c["scv"], d, c["is_queue"]))
            d = d[order]
            iq = c["is_queue"][order]
            sv = c["scv"][order]
            if len(d) < width:
                pad = width - len(d)
                d = np.concatenate([d, np.zeros(pad)])
                iq = np.concatenate([iq, np.zeros(pad, dtype=bool)])
                sv = np.concatenate([sv, np.ones(pad)])
            key = ("chain", solver, c["pop"],
                   d.tobytes(), iq.tobytes(), sv.tobytes())
            cached = _mva_cache.get(key)
            if cached is not _MISS:
                solved[i] = cached
            elif key in pending:
                pending[key].append(i)
            else:
                pending[key] = [i]
                batch.append((key, c["pop"], d, iq, sv))
        if batch:
            xs = batch_solver(
                np.stack([b[2] for b in batch]),
                np.stack([b[3] for b in batch]),
                np.stack([b[4] for b in batch]),
                np.array([b[1] for b in batch]))
            for (key, _, _, _, _), xv in zip(batch, xs):
                xv = float(xv)
                _mva_cache.put(key, xv)
                for i in pending[key]:
                    solved[i] = xv

        proposed: dict[tuple[int, str], float] = {}
        for i, c in enumerate(chains):
            p = c["p"]
            x_new = solved[i]
            x_proc[p] = x_new
            residence_mem[p] = c["pop"] / x_new - think
            for gname, vq in c["visits"].items():
                # Channel occupancy includes the non-blocking write-back /
                # prefetch traffic that rides along with each demand miss,
                # and the extra occupancy of remote requests.
                proposed[(p, gname)] = \
                    x_new * vq * profile.mlp * amp * loaded_service(gname) \
                    * c["svc_scale"][gname]
                dst = groups[gname]["processor"]
                if link_cycles > 0.0 and penalty_eff > 0.0 \
                        and dst is not None and dst != p:
                    # Occupancy this chain's remote lines impose on the
                    # *destination* processor's port (a line terminates
                    # there exactly once, however many hops it crossed).
                    proposed[(p, f"port{dst}")] = \
                        x_new * vq * profile.mlp * link_cycles \
                        * penalty_eff
        max_delta = 0.0
        delta: dict[tuple[int, str], float] = {}
        for key, new_val in proposed.items():
            old_val = contrib[key]
            # Damped for stability; retries escalate to heavier damping
            # (smaller new-value weight).
            updated = (1.0 - damping) * old_val + damping * new_val
            d_val = updated - old_val
            delta[key] = d_val
            max_delta = max(max_delta, abs(d_val))
            contrib[key] = updated
        if max_delta < 1e-9:
            break
        try:
            dog.tick(max_delta)
        except SolverError as exc:
            if not accept_nonconverged:
                raise
            # Final ladder rung: a degraded-but-bounded answer beats a
            # raise or a hang.  Accept the last iterate, on the record.
            record_event(DegradationEvent(
                site=FLOW_SITE, action="gave_up", from_stage=solver,
                to_stage=solver, detail=exc.message))
            break
        if prev_delta is not None and jumps < _TAIL_MAX_JUMPS \
                and max_delta < _TAIL_DELTA:
            jumped = _tail_jump(contrib, delta, prev_delta)
            if jumped:
                jumps += 1
                prev_delta = None
                continue
        prev_delta = delta

    # --- counter bookkeeping --------------------------------------------------
    episodes_per_core = r / (n * profile.mlp)
    per_core = [0.0] * machine.n_processors
    memory_stall = 0.0
    for p in active:
        cycle_time = think + residence_mem[p]
        per_core[p] = episodes_per_core * cycle_time
        memory_stall += counts[p] * episodes_per_core * residence_mem[p]
    total = w_eff + b_eff + memory_stall

    return FlowResult(
        n_active=n,
        total_cycles=total,
        work_cycles=w_eff,
        base_stall_cycles=b_eff,
        memory_stall_cycles=memory_stall,
        llc_misses=r,
        instructions=profile.instructions,
        per_core_cycles=tuple(per_core),
        controller_utilisation={g: group_util(g) for g in groups},
        solver_stage=solver,
    )


def _tail_jump(contrib: dict, delta: dict, prev_delta: dict) -> bool:
    """Extrapolate the geometric tail of the damped fixed point.

    Estimates the common contraction ratio ``r`` from two consecutive
    delta vectors (least squares) and, when every significant key agrees
    with it, adds the remaining series ``delta * r / (1 - r)`` to each
    contribution.  Returns whether the jump was applied.
    """
    num = 0.0
    den = 0.0
    for key, pd in prev_delta.items():
        num += delta.get(key, 0.0) * pd
        den += pd * pd
    if den <= 0.0:
        return False
    ratio = num / den
    if not _TAIL_RATIO_LO <= ratio <= _TAIL_RATIO_HI:
        return False
    significant = max(abs(pd) for pd in prev_delta.values()) * 0.05
    for key, d_val in delta.items():
        pd = prev_delta.get(key, 0.0)
        if abs(pd) <= significant:
            continue
        if abs(d_val - ratio * pd) > _TAIL_RATIO_TOL * abs(pd):
            return False
    gain = ratio / (1.0 - ratio)
    for key, d_val in delta.items():
        contrib[key] = max(contrib[key] + d_val * gain, 0.0)
    return True
