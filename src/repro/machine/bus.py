"""Front-side bus model for UMA machines.

On the paper's Intel UMA testbed (Clovertown-class), each processor owns a
private front-side bus to the shared memory controller hub.  Every off-chip
request occupies its processor's bus for one cache-line transfer, so the
bus is an additional FCFS station *per processor* in front of the shared
controller — this is what produces the paper's observation of two growth
intervals (cores 1-4, then 5-8) on the UMA machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import Frequency
from repro.util.validation import check_integer, check_positive


@dataclass(frozen=True)
class FrontSideBus:
    """One processor's front-side bus.

    Parameters
    ----------
    clock_mhz:
        Bus clock in MHz (E5320: 1066 MT/s quad-pumped 266 MHz).
    bytes_per_transfer:
        Width of one bus beat in bytes (8 for 64-bit FSB).
    line_bytes:
        Cache-line size moved per memory request.
    """

    clock_mhz: float
    bytes_per_transfer: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        check_positive("clock_mhz", self.clock_mhz)
        check_integer("bytes_per_transfer", self.bytes_per_transfer, minimum=1)
        check_integer("line_bytes", self.line_bytes, minimum=1)

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Peak bus bandwidth in bytes/second."""
        return self.clock_mhz * 1e6 * self.bytes_per_transfer

    def transfer_ns(self) -> float:
        """Time to move one cache line over the bus, in nanoseconds."""
        return self.line_bytes / self.bandwidth_bytes_per_s * 1e9

    def transfer_cycles(self, freq: Frequency) -> float:
        """Cache-line transfer time in core cycles at core clock ``freq``."""
        return freq.cycles_in(self.transfer_ns() * 1e-9)
