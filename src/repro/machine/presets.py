"""The paper's three testbeds as machine models.

Parameter sources: the paper's own hardware descriptions (core counts,
cache sizes, controller and channel counts, SMT) plus public
microarchitecture timing for the DRAM/bus/interconnect constants.  The
absolute timing constants set the scale of the simulated cycle counts; the
*shape* of contention growth comes from the topology (bus sharing, number
of controllers, hop distances), which is what the reproduction validates.
"""

from __future__ import annotations

from repro.machine.bus import FrontSideBus
from repro.machine.dram import DramTiming
from repro.machine.interconnect import (
    amd_numa_interconnect,
    intel_numa_interconnect,
)
from repro.machine.topology import (
    CacheLevel,
    Machine,
    MemoryArchitecture,
    MemoryController,
    Processor,
)
from repro.util.units import Frequency

KIB = 1024
MIB = 1024 * 1024


def intel_uma() -> Machine:
    """Dual quad-core Intel Xeon E5320 (Clovertown), 8 cores, UMA.

    One memory controller hub with dual-channel DDR2-667 behind two
    1066 MT/s front-side buses (one per package).  8 MB of L2 per package
    (the paper counts 8 MB L2 for the machine's last level).
    """
    freq = Frequency.ghz(1.86)
    dram = DramTiming(
        row_hit_ns=12.0,       # 64 B line at ~5.3 GB/s per DDR2-667 channel
        row_conflict_ns=60.0,  # bank-thrashed conflicts serialise near tRC (DDR2-667: ~60 ns)
        p_conflict=0.25,
        channels=2,
        # DDR2 behind a shared MCH loses row locality almost completely
        # once eight streams interleave.
        p_conflict_saturated=0.95,
        idle_latency_ns=45.0,  # FSB round trip + MCH + CAS on an idle system
    )
    mch = MemoryController(controller_id=0, processor_index=-1, dram=dram)
    bus = FrontSideBus(clock_mhz=1066.0, bytes_per_transfer=8)
    caches = (
        CacheLevel("L1d", 32 * KIB, 8, 64, 3.0, shared_by=1),
        CacheLevel("L2", 4 * MIB, 16, 64, 14.0, shared_by=4),
    )
    processors = tuple(
        Processor(index=i, n_physical_cores=4, smt=1, caches=caches,
                  controllers=(), bus=bus)
        for i in range(2)
    )
    return Machine(
        name="Intel UMA (Xeon E5320)",
        architecture=MemoryArchitecture.UMA,
        frequency=freq,
        processors=processors,
        shared_controller=mch,
    )


def intel_numa() -> Machine:
    """Dual six-core Intel Xeon X5650 (Westmere-EP), 24 logical cores, NUMA.

    Two hardware threads per core are counted as logical cores (the paper's
    convention: each SMT thread issues memory requests independently).  One
    controller per package with triple-channel DDR3-1333; packages joined
    by a direct QPI link (distances 0 and 1 hop).
    """
    freq = Frequency.ghz(2.66)
    caches = (
        CacheLevel("L1d", 32 * KIB, 8, 64, 4.0, shared_by=2),
        CacheLevel("L2", 256 * KIB, 8, 64, 10.0, shared_by=2),
        # 12 MiB / 64 B = 196608 lines; 12-way keeps the set count a power
        # of two (16384) as the trace simulator requires.
        CacheLevel("L3", 12 * MIB, 12, 64, 40.0, shared_by=12),
    )

    def controller(cid: int, proc: int) -> MemoryController:
        return MemoryController(
            controller_id=cid,
            processor_index=proc,
            dram=DramTiming(
                row_hit_ns=6.0,        # 64 B at ~10.6 GB/s per DDR3-1333 channel
                # Bank-thrashed conflicts serialise near the row cycle
                # time tRC (DDR3-1333: ~40 ns).
                row_conflict_ns=40.0,
                p_conflict=0.15,
                channels=3,
                p_conflict_saturated=0.95,
                idle_latency_ns=35.0,  # integrated controller, idle round trip
            ),
        )

    processors = tuple(
        Processor(index=i, n_physical_cores=6, smt=2, caches=caches,
                  controllers=(controller(i, i),))
        for i in range(2)
    )
    return Machine(
        name="Intel NUMA (Xeon X5650)",
        architecture=MemoryArchitecture.NUMA,
        frequency=freq,
        processors=processors,
        interconnect=intel_numa_interconnect(hop_latency_ns=32.0),
    )


def amd_numa() -> Machine:
    """Quad twelve-core AMD Opteron 6172 (Magny-Cours), 48 cores, NUMA.

    Each package is two six-core dies, each die with its own controller —
    eight controllers total, two per processor, on a partial-mesh
    HyperTransport interconnect with 0/1/2-hop distances.  Dual-channel
    DDR3-1333 per controller.
    """
    freq = Frequency.ghz(2.1)
    caches = (
        CacheLevel("L1d", 64 * KIB, 2, 64, 3.0, shared_by=1),
        CacheLevel("L2", 512 * KIB, 16, 64, 12.0, shared_by=1),
        # 2 x 5 MB L3 (one per die); modelled as one 10 MB package LLC.
        # 10 MiB / 64 B = 163840 lines; associativity 10 gives 16384 sets.
        CacheLevel("L3", 10 * MIB, 10, 64, 45.0, shared_by=12),
    )

    def controller(cid: int, proc: int) -> MemoryController:
        return MemoryController(
            controller_id=cid,
            processor_index=proc,
            dram=DramTiming(
                row_hit_ns=6.0,
                # Magny-Cours controllers lose row locality badly once four
                # dies' streams interleave: high conflict cost and a high
                # saturated conflict fraction.
                row_conflict_ns=36.0,
                p_conflict=0.25,
                channels=2,
                p_conflict_saturated=0.90,
                idle_latency_ns=30.0,
            ),
        )

    processors = tuple(
        Processor(
            index=i, n_physical_cores=12, smt=1, caches=caches,
            controllers=(controller(2 * i, i), controller(2 * i + 1, i)),
        )
        for i in range(4)
    )
    return Machine(
        name="AMD NUMA (Opteron 6172)",
        architecture=MemoryArchitecture.NUMA,
        frequency=freq,
        processors=processors,
        interconnect=amd_numa_interconnect(hop_latency_ns=50.0),
    )


def all_machines() -> list[Machine]:
    """The three testbeds in the paper's presentation order."""
    return [intel_uma(), intel_numa(), amd_numa()]
