"""NUMA interconnect topologies (paper Fig. 2).

The interconnect is an undirected graph whose nodes are *memory
controllers*.  The hop count between the controller local to a requesting
core and the controller owning the data determines the extra latency of a
remote access:

* Intel NUMA (Fig. 2a): two controllers joined by one QPI link — distances
  are 0 (local) and 1 hop.
* AMD NUMA (Fig. 2b): eight controllers (two per package) on a partial
  mesh of HyperTransport links — distances are 0, 1 and 2 hops.  The
  concrete edge set below is the Magny-Cours four-package topology: the
  two nodes of a package are directly linked, and each node carries three
  external links arranged so every package pair is connected while some
  node pairs still need two hops.
"""

from __future__ import annotations

import networkx as nx

from repro.util.units import Frequency, ns_to_cycles
from repro.util.validation import (
    ValidationError,
    check_nonnegative,
    check_positive,
)


class Interconnect:
    """Hop-distance model over memory-controller nodes.

    Parameters
    ----------
    edges:
        Undirected links between controller ids.
    hop_latency_ns:
        Extra latency contributed by each hop traversed.
    nodes:
        Explicit node set (required so single-node or disconnected-probe
        graphs are well-defined).
    link_bandwidth_bytes_per_s:
        Payload bandwidth of one link, per direction.  Remote requests
        occupy link capacity for one cache-line transfer per hop; ``None``
        models infinitely fast links (latency only).
    """

    def __init__(self, nodes: list[int], edges: list[tuple[int, int]],
                 hop_latency_ns: float,
                 link_bandwidth_bytes_per_s: float | None = None) -> None:
        if not nodes:
            raise ValidationError("interconnect needs at least one node")
        check_nonnegative("hop_latency_ns", hop_latency_ns)
        self.hop_latency_ns = hop_latency_ns
        if link_bandwidth_bytes_per_s is not None:
            check_positive("link_bandwidth_bytes_per_s",
                           link_bandwidth_bytes_per_s)
        self.link_bandwidth_bytes_per_s = link_bandwidth_bytes_per_s
        self.graph = nx.Graph()
        self.graph.add_nodes_from(nodes)
        for a, b in edges:
            if a not in self.graph or b not in self.graph:
                raise ValidationError(f"edge ({a}, {b}) references unknown node")
            if a == b:
                raise ValidationError(f"self-loop on node {a}")
            self.graph.add_edge(a, b)
        if len(nodes) > 1 and not nx.is_connected(self.graph):
            raise ValidationError("interconnect must be connected")
        self._dist = dict(nx.all_pairs_shortest_path_length(self.graph))

    def __cache_tokens__(self) -> dict:
        """Value identity for solver cache keys (see ``repro.perf.keys``).

        The hop-distance matrix plus the latency/bandwidth parameters
        fully determine this object's observable behaviour; the graph
        library's internal structures stay out of the key.
        """
        return {
            "hop_latency_ns": self.hop_latency_ns,
            "link_bandwidth_bytes_per_s": self.link_bandwidth_bytes_per_s,
            "dist": self._dist,
        }

    @property
    def nodes(self) -> list[int]:
        return sorted(self.graph.nodes)

    def hops(self, src: int, dst: int) -> int:
        """Number of links between controllers ``src`` and ``dst``."""
        try:
            return self._dist[src][dst]
        except KeyError:
            raise ValidationError(f"unknown controller pair ({src}, {dst})") from None

    def latency_ns(self, src: int, dst: int) -> float:
        """Extra interconnect latency for a request from ``src`` to ``dst``."""
        return self.hops(src, dst) * self.hop_latency_ns

    def latency_cycles(self, src: int, dst: int, freq: Frequency) -> float:
        """Same, in core cycles."""
        return ns_to_cycles(self.latency_ns(src, dst), freq) if \
            self.hops(src, dst) else 0.0

    def link_transfer_ns(self, line_bytes: int = 64) -> float:
        """Time one cache line occupies one link, in nanoseconds.

        Zero when links are modelled as infinitely fast.
        """
        if self.link_bandwidth_bytes_per_s is None:
            return 0.0
        return line_bytes / self.link_bandwidth_bytes_per_s * 1e9

    def distance_classes(self) -> list[int]:
        """Sorted distinct hop counts over all node pairs.

        The paper reports these as "direct, one hop" (Intel) and "direct,
        one hop and two hops" (AMD).
        """
        seen = set()
        for src in self.graph.nodes:
            for dst in self.graph.nodes:
                seen.add(self.hops(src, dst))
        return sorted(seen)

    def mean_hops_from(self, src: int) -> float:
        """Average hops from ``src`` to every node (including itself)."""
        nodes = self.nodes
        return sum(self.hops(src, d) for d in nodes) / len(nodes)


def intel_numa_interconnect(hop_latency_ns: float = 32.0,
                            link_bandwidth_gbps: float = 12.8) -> Interconnect:
    """Two directly linked controllers (paper Fig. 2a): one QPI link."""
    check_positive("hop_latency_ns", hop_latency_ns)
    return Interconnect(nodes=[0, 1], edges=[(0, 1)],
                        hop_latency_ns=hop_latency_ns,
                        link_bandwidth_bytes_per_s=link_bandwidth_gbps * 1e9)


def amd_numa_interconnect(hop_latency_ns: float = 50.0,
                          link_bandwidth_gbps: float = 6.4) -> Interconnect:
    """Eight controllers on the Magny-Cours partial mesh (paper Fig. 2b).

    Nodes ``2p`` and ``2p+1`` are the two controllers of package ``p``.
    The edge set gives distance classes {0, 1, 2}: every package pair has
    at least one direct link, but some individual node pairs are two hops
    apart — matching the paper's "direct, one hop and two hops".
    """
    check_positive("hop_latency_ns", hop_latency_ns)
    # Packages form a ring: adjacent packages are fully linked die-to-die
    # (one hop), diagonal packages have no direct links (two hops via a
    # neighbour).  This is what gives the testbed its three memory
    # latencies (direct / one hop / two hops) with *heterogeneous*
    # package distances — the property that makes the paper's
    # homogeneous-latency model variant lose accuracy on this machine.
    def pkg(p):
        return (2 * p, 2 * p + 1)

    edges = [(0, 1), (2, 3), (4, 5), (6, 7)]  # intra-package links
    for a, b in ((0, 1), (1, 2), (2, 3), (3, 0)):  # package ring
        for u in pkg(a):
            for v in pkg(b):
                edges.append((u, v))
    return Interconnect(nodes=list(range(8)), edges=edges,
                        hop_latency_ns=hop_latency_ns,
                        link_bandwidth_bytes_per_s=link_bandwidth_gbps * 1e9)
