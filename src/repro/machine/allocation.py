"""Core allocation policies: the paper's fill-processor-first scheme.

The experiments fix the number of program threads at the machine's maximum
core count and vary the number of *active cores* from 1 to that maximum,
pinning threads with ``sched_setaffinity``.  Cores are activated
fill-processor-first: all logical cores of processor 0 before processor 1,
and on AMD the two controllers of a package come online together with that
package's cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.topology import Machine, MemoryArchitecture
from repro.util.validation import ValidationError, check_integer


class AffinityError(ValidationError):
    """Raised for invalid pinning requests (mirrors sched_setaffinity EINVAL)."""


def fill_processor_first(machine: Machine, n_active: int) -> list[int]:
    """Logical core ids activated by the paper's fill-processor-first policy.

    Logical ids already enumerate package-by-package (LIKWID order), so the
    policy is simply the first ``n_active`` logical ids.
    """
    check_integer("n_active", n_active, minimum=1, maximum=machine.n_cores)
    return list(range(n_active))


@dataclass(frozen=True)
class CoreAllocation:
    """Placement of ``n_active`` cores (and the threads pinned to them).

    Attributes
    ----------
    machine:
        The machine being allocated on.
    n_active:
        Number of active cores, 1..machine.n_cores.
    n_threads:
        Total program threads; the paper fixes this at machine.n_cores, so
        fewer active cores means oversubscription of the active ones.
    """

    machine: Machine
    n_active: int
    n_threads: int

    def __post_init__(self) -> None:
        check_integer("n_active", self.n_active, minimum=1,
                      maximum=self.machine.n_cores)
        check_integer("n_threads", self.n_threads, minimum=1)
        if self.n_threads < self.n_active:
            raise AffinityError(
                f"{self.n_threads} threads cannot occupy {self.n_active} cores "
                "under the paper's one-thread-per-core-minimum policy")

    @classmethod
    def paper_policy(cls, machine: Machine, n_active: int) -> "CoreAllocation":
        """The paper's setup: threads fixed at max cores, fill-first pinning."""
        return cls(machine=machine, n_active=n_active,
                   n_threads=machine.n_cores)

    @property
    def active_core_ids(self) -> list[int]:
        return fill_processor_first(self.machine, self.n_active)

    @property
    def oversubscription(self) -> float:
        """Threads per active core (>= 1); drives measurement variability."""
        return self.n_threads / self.n_active

    def cores_per_processor(self) -> list[int]:
        """Active core count on each processor, in processor order.

        The placement is a pure function of the frozen allocation, and
        the flow solver reads it several times per solve, so the counts
        are computed once per instance (against the machine's memoized
        core enumeration, not a per-call rebuild) and copied out — the
        returned list stays safely mutable for callers.
        """
        cached = self.__dict__.get("_cores_per_processor")
        if cached is None:
            counts = [0] * self.machine.n_processors
            cores = self.machine.cores()
            for cid in self.active_core_ids:
                counts[cores[cid].processor_index] += 1
            cached = tuple(counts)
            object.__setattr__(self, "_cores_per_processor", cached)
        return list(cached)

    def active_processors(self) -> list[int]:
        """Indices of processors with at least one active core."""
        cached = self.__dict__.get("_active_processors")
        if cached is None:
            cached = tuple(i for i, c in enumerate(self.cores_per_processor())
                           if c > 0)
            object.__setattr__(self, "_active_processors", cached)
        return list(cached)

    def active_controllers(self) -> list[int]:
        """Controller ids in service under this allocation.

        UMA: always the single shared controller.  NUMA: every controller
        of every processor with active cores — on AMD both controllers of a
        package activate together, matching the paper's "0 and 1, then also
        2 and 3, ..." ordering.
        """
        m = self.machine
        if m.architecture is MemoryArchitecture.UMA:
            assert m.shared_controller is not None
            return [m.shared_controller.controller_id]
        out: list[int] = []
        for p in self.active_processors():
            out.extend(c.controller_id for c in m.processors[p].controllers)
        return sorted(out)

    def local_fraction(self) -> float:
        """Fraction of memory accesses served by the *local* controller(s).

        The paper assumes homogeneous memory affinity among threads: with
        ``c`` of ``n`` cores on the first processor, a fraction ``c/n`` of
        accesses is local to it (paper eq. 10 generalised to any split).
        Under fill-first the first processor is the reference: this returns
        the fraction of accesses that stay on the requesting core's own
        processor, given data spread uniformly over active processors.
        """
        counts = [c for c in self.cores_per_processor() if c > 0]
        n = self.n_active
        # Each processor holds a share of data proportional to its active
        # cores; a core's request is local with the probability that the
        # target page lives on its own processor.
        return sum((c / n) ** 2 for c in counts)

    def mean_remote_hops(self) -> float:
        """Mean interconnect hops per request under uniform affinity.

        Weighted over (requesting processor, owning processor) pairs by
        their active-core shares; UMA machines return 0 (no interconnect).
        """
        m = self.machine
        if m.architecture is MemoryArchitecture.UMA or m.interconnect is None:
            return 0.0
        counts = self.cores_per_processor()
        n = self.n_active
        total = 0.0
        for src_p, c_src in enumerate(counts):
            if c_src == 0:
                continue
            src_ctls = [c.controller_id for c in m.processors[src_p].controllers]
            for dst_p, c_dst in enumerate(counts):
                if c_dst == 0:
                    continue
                if dst_p == src_p:
                    # A processor's own controllers are local: requests do
                    # not enter the inter-processor network.
                    continue
                dst_ctls = [c.controller_id
                            for c in m.processors[dst_p].controllers]
                # Average hops between the processors' controller sets.
                hops = sum(m.interconnect.hops(a, b)
                           for a in src_ctls for b in dst_ctls) \
                    / (len(src_ctls) * len(dst_ctls))
                total += (c_src / n) * (c_dst / n) * hops
        return total
