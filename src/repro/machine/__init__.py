"""Simulated multicore machines.

This package replaces the paper's three physical testbeds with fully
described machine models:

* :func:`~repro.machine.presets.intel_uma` — dual quad-core Xeon E5320,
  one shared memory controller behind per-processor front-side buses;
* :func:`~repro.machine.presets.intel_numa` — dual six-core (2-way SMT)
  Xeon X5650, one controller per processor, QPI direct link;
* :func:`~repro.machine.presets.amd_numa` — quad twelve-core Opteron
  6172, two controllers per processor, eight-node partial-mesh HT
  interconnect with 0/1/2-hop distances.

The object model carries everything the measurement substrate and the
analytical model need: clock frequency, cache hierarchy, DRAM timing,
controller channel counts, bus widths and NUMA hop latencies — all taken
from the paper's hardware table or public microarchitecture documentation.
"""

from repro.machine.allocation import (
    AffinityError,
    CoreAllocation,
    fill_processor_first,
)
from repro.machine.bus import FrontSideBus
from repro.machine.caches import (
    CacheConfig,
    CacheHierarchy,
    SetAssociativeCache,
)
from repro.machine.dram import DramTiming
from repro.machine.interconnect import Interconnect
from repro.machine.presets import all_machines, amd_numa, intel_numa, intel_uma
from repro.machine.topology import (
    CacheLevel,
    Core,
    Machine,
    MemoryArchitecture,
    MemoryController,
    Processor,
)

__all__ = [
    "CacheLevel",
    "Core",
    "Processor",
    "MemoryController",
    "Machine",
    "MemoryArchitecture",
    "DramTiming",
    "FrontSideBus",
    "Interconnect",
    "CacheConfig",
    "SetAssociativeCache",
    "CacheHierarchy",
    "intel_uma",
    "intel_numa",
    "amd_numa",
    "all_machines",
    "CoreAllocation",
    "fill_processor_first",
    "AffinityError",
]
