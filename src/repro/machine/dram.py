"""DRAM timing and memory-controller service model.

A controller serves one cache-line request per channel at a time.  Service
time is two-point distributed: a *row hit* (the line's DRAM row is already
open) completes in ``row_hit_ns``, a *row conflict* requires precharge +
activate and takes ``row_conflict_ns``.  The mix probability and the
channel count determine the controller's aggregate service rate ``mu`` in
cycles — the quantity the paper's model estimates by regression.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.qnet.mg1 import two_point_service_moments
from repro.util.units import Frequency, ns_to_cycles
from repro.util.validation import (
    check_integer,
    check_nonnegative,
    check_positive,
    check_probability,
)


@dataclass(frozen=True)
class DramTiming:
    """Timing parameters of one memory controller's DRAM array.

    Parameters
    ----------
    row_hit_ns:
        Latency of a request that hits an open row (CAS-limited).
    row_conflict_ns:
        Latency of a request that must precharge and re-activate.
    p_conflict:
        Fraction of requests that conflict when a single stream has the
        banks to itself (light load).
    channels:
        Independent DRAM channels on this controller.
    p_conflict_saturated:
        Conflict fraction when many interleaved streams contend for the
        banks (utilisation near 1) — interleaving destroys row locality,
        so the *effective service time grows with load*.  Defaults to
        ``min(0.95, 2.5 * p_conflict)``.  This load dependence is what
        lets measured contention exceed the core-per-controller ratio, as
        the paper's SP.C (omega = 11.6 on 24 cores / 2 controllers) does.
    """

    row_hit_ns: float
    row_conflict_ns: float
    p_conflict: float
    channels: int
    p_conflict_saturated: float | None = None
    #: Fixed, pipelined access latency a request pays end-to-end even on an
    #: idle system (controller processing, CAS, data return) *beyond* the
    #: channel-occupancy service time.  Overlapped requests share it.
    idle_latency_ns: float = 0.0

    def __post_init__(self) -> None:
        check_positive("row_hit_ns", self.row_hit_ns)
        check_positive("row_conflict_ns", self.row_conflict_ns)
        if self.row_conflict_ns < self.row_hit_ns:
            raise ValueError("row conflict must be at least as slow as a hit")
        check_probability("p_conflict", self.p_conflict)
        check_integer("channels", self.channels, minimum=1)
        check_nonnegative("idle_latency_ns", self.idle_latency_ns)
        if self.p_conflict_saturated is not None:
            check_probability("p_conflict_saturated", self.p_conflict_saturated)
            if self.p_conflict_saturated < self.p_conflict:
                raise ValueError(
                    "saturated conflict fraction cannot be below the "
                    "light-load fraction")

    @property
    def p_conflict_sat(self) -> float:
        """Resolved saturated conflict fraction (see class docstring)."""
        if self.p_conflict_saturated is not None:
            return self.p_conflict_saturated
        return min(0.95, 2.5 * self.p_conflict)

    def conflict_probability_at(self, utilisation: float) -> float:
        """Conflict fraction at a given controller utilisation (linear)."""
        check_probability("utilisation", utilisation)
        return self.p_conflict + (self.p_conflict_sat - self.p_conflict) \
            * utilisation

    def mean_service_cycles_at(self, freq: Frequency,
                               utilisation: float) -> float:
        """Load-dependent mean per-channel service time in cycles."""
        p = self.conflict_probability_at(utilisation)
        mean_ns = (1.0 - p) * self.row_hit_ns + p * self.row_conflict_ns
        return ns_to_cycles(mean_ns, freq)

    def service_moments_ns(self) -> tuple[float, float]:
        """``(mean_ns, scv)`` of the per-channel service time."""
        return two_point_service_moments(
            self.row_hit_ns, self.row_conflict_ns, self.p_conflict)

    def mean_service_cycles(self, freq: Frequency) -> float:
        """Mean per-channel service time in core cycles."""
        mean_ns, _ = self.service_moments_ns()
        return ns_to_cycles(mean_ns, freq)

    def service_scv(self) -> float:
        """SCV of the per-channel service time (row-hit/conflict mix)."""
        _, scv = self.service_moments_ns()
        return scv

    def aggregate_service_rate(self, freq: Frequency) -> float:
        """Controller service rate ``mu`` in requests per core cycle.

        All channels pooled: ``channels / mean_service_cycles``.  This is
        the quantity the paper's regression recovers as ``mu``.
        """
        return self.channels / self.mean_service_cycles(freq)

    def idle_latency_cycles(self, freq: Frequency) -> float:
        """Fixed access latency in core cycles."""
        return ns_to_cycles(self.idle_latency_ns, freq) \
            if self.idle_latency_ns else 0.0

    def sample_service_ns(self, rng, size: int):
        """Draw ``size`` two-point service times in nanoseconds (for DES)."""
        import numpy as np

        conflicts = rng.random(size) < self.p_conflict
        return np.where(conflicts, self.row_conflict_ns, self.row_hit_ns)
