"""Set-associative LRU cache simulation.

The workload kernels produce memory reference traces; pushing them through
this hierarchy yields the last-level-cache miss stream — the off-chip
request traffic whose burstiness and volume the paper studies.  Only the
miss *stream* matters downstream, so the simulator models tags, sets and
LRU replacement but not data.

This is a trace-driven functional simulator, not cycle-accurate: it
answers "which references miss" and (optionally) "at which reference index
did each miss occur", which is all the burst sampler needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.topology import CacheLevel
from repro.util.validation import ValidationError


@dataclass(frozen=True)
class CacheConfig:
    """Convenience constructor for a :class:`CacheLevel` by common units."""

    name: str
    size_kib: float
    associativity: int
    line_bytes: int = 64
    latency_cycles: float = 10.0
    shared_by: int = 1

    def to_level(self) -> CacheLevel:
        return CacheLevel(
            name=self.name,
            size_bytes=int(self.size_kib * 1024),
            associativity=self.associativity,
            line_bytes=self.line_bytes,
            latency_cycles=self.latency_cycles,
            shared_by=self.shared_by,
        )


class SetAssociativeCache:
    """One cache with LRU replacement, driven by byte addresses.

    State persists across calls to :meth:`access`, so a trace can be fed
    in chunks.  Use :meth:`reset` between workloads.
    """

    def __init__(self, level: CacheLevel) -> None:
        self.level = level
        self.n_sets = level.n_sets
        self.assoc = level.associativity
        self._line_shift = int(level.line_bytes).bit_length() - 1
        if (1 << self._line_shift) != level.line_bytes:
            raise ValidationError(
                f"line_bytes={level.line_bytes} must be a power of two")
        if self.n_sets & (self.n_sets - 1):
            raise ValidationError(
                f"n_sets={self.n_sets} must be a power of two")
        self.reset()

    def reset(self) -> None:
        """Invalidate all lines and clear statistics."""
        self._tags = np.full((self.n_sets, self.assoc), -1, dtype=np.int64)
        self._stamp = np.zeros((self.n_sets, self.assoc), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        if self.accesses == 0:
            raise ValidationError("no accesses recorded")
        return self.misses / self.accesses

    def access(self, addresses: np.ndarray) -> np.ndarray:
        """Run byte ``addresses`` through the cache; return a hit mask.

        The returned boolean array marks which references hit.  Misses
        allocate (write-allocate, no distinction between loads and stores,
        as only the off-chip request count matters).
        """
        addr = np.asarray(addresses)
        if addr.ndim != 1:
            raise ValidationError("addresses must be a 1-D array")
        if addr.size and addr.min() < 0:
            raise ValidationError("addresses must be non-negative")
        lines = addr.astype(np.int64) >> self._line_shift
        sets = (lines & (self.n_sets - 1)).astype(np.int64)
        tags = (lines >> int(np.log2(self.n_sets))) if self.n_sets > 1 \
            else lines
        hit_mask = np.zeros(addr.size, dtype=bool)

        tag_arr = self._tags
        stamp_arr = self._stamp
        clock = self._clock
        for i in range(addr.size):
            s = sets[i]
            t = tags[i]
            row = tag_arr[s]
            clock += 1
            match = np.nonzero(row == t)[0]
            if match.size:
                way = match[0]
                hit_mask[i] = True
            else:
                way = int(np.argmin(stamp_arr[s]))
                tag_arr[s, way] = t
            stamp_arr[s, way] = clock
        self._clock = clock
        n_hits = int(hit_mask.sum())
        self.hits += n_hits
        self.misses += addr.size - n_hits
        return hit_mask


class CacheHierarchy:
    """An inclusive multi-level hierarchy (L1 → ... → LLC).

    Each level only sees the misses of the level above, mirroring how
    PAPI_L2_TCM / LLC_MISSES count demand misses at each level.
    """

    def __init__(self, levels: list[CacheLevel]) -> None:
        if not levels:
            raise ValidationError("hierarchy needs at least one level")
        for upper, lower in zip(levels, levels[1:]):
            if lower.size_bytes < upper.size_bytes:
                raise ValidationError(
                    f"{lower.name} smaller than {upper.name}; levels must "
                    "be ordered from closest to farthest")
        self.caches = [SetAssociativeCache(lv) for lv in levels]

    def reset(self) -> None:
        for c in self.caches:
            c.reset()

    @property
    def levels(self) -> list[CacheLevel]:
        return [c.level for c in self.caches]

    def access(self, addresses: np.ndarray) -> dict[str, np.ndarray]:
        """Feed a trace through the hierarchy.

        Returns a dict with, per level name, the boolean hit mask *relative
        to the references that reached that level*, plus two summary keys:

        * ``"llc_miss_mask"`` — boolean mask over the original trace marking
          references that missed every level (off-chip requests);
        * ``"llc_miss_indices"`` — indices into the original trace of those
          off-chip requests (their program order drives burst analysis).
        """
        addr = np.asarray(addresses)
        out: dict[str, np.ndarray] = {}
        current = addr
        current_idx = np.arange(addr.size)
        for cache in self.caches:
            hits = cache.access(current)
            out[cache.level.name] = hits
            current = current[~hits]
            current_idx = current_idx[~hits]
        mask = np.zeros(addr.size, dtype=bool)
        mask[current_idx] = True
        out["llc_miss_mask"] = mask
        out["llc_miss_indices"] = current_idx
        return out

    def llc_misses(self) -> int:
        """Cumulative off-chip requests since the last reset."""
        return self.caches[-1].misses
