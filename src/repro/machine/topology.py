"""Machine object model: cores, caches, processors, controllers, machines.

The topology mirrors the paper's Fig. 1: several processors (packages),
each with a set of cores behind a shared last-level cache; memory is
reached either through a single shared controller over per-processor buses
(UMA) or through per-processor controllers joined by an interconnect
(NUMA).  Logical core numbering follows the LIKWID convention the paper
used: consecutive logical ids fill a package before moving to the next.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.machine.bus import FrontSideBus
from repro.machine.dram import DramTiming
from repro.machine.interconnect import Interconnect
from repro.util.units import Frequency
from repro.util.validation import (
    ValidationError,
    check_integer,
    check_positive,
)


class MemoryArchitecture(enum.Enum):
    """Paper Fig. 1: the two memory organisations under study."""

    UMA = "UMA"
    NUMA = "NUMA"


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy.

    ``shared_by`` is the number of *logical* cores sharing one instance of
    this cache (1 = private, cores-per-package = package-shared LLC).
    """

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int
    latency_cycles: float
    shared_by: int

    def __post_init__(self) -> None:
        check_integer("size_bytes", self.size_bytes, minimum=1)
        check_integer("associativity", self.associativity, minimum=1)
        check_integer("line_bytes", self.line_bytes, minimum=1)
        check_positive("latency_cycles", self.latency_cycles)
        check_integer("shared_by", self.shared_by, minimum=1)
        n_lines = self.size_bytes // self.line_bytes
        if n_lines % self.associativity != 0:
            raise ValidationError(
                f"{self.name}: {n_lines} lines not divisible by "
                f"associativity {self.associativity}")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // self.line_bytes // self.associativity


@dataclass(frozen=True)
class Core:
    """One logical core (SMT hardware threads are distinct logical cores,
    matching the paper's treatment of the X5650)."""

    logical_id: int
    physical_id: int
    processor_index: int
    smt_sibling: Optional[int] = None


@dataclass(frozen=True)
class MemoryController:
    """A memory controller with its DRAM timing."""

    controller_id: int
    processor_index: int
    dram: DramTiming

    def service_rate(self, freq: Frequency) -> float:
        """Aggregate requests per core cycle across channels (``mu``)."""
        return self.dram.aggregate_service_rate(freq)


@dataclass(frozen=True)
class Processor:
    """One package: physical cores (possibly SMT), caches, controllers."""

    index: int
    n_physical_cores: int
    smt: int
    caches: tuple[CacheLevel, ...]
    controllers: tuple[MemoryController, ...]
    bus: Optional[FrontSideBus] = None

    def __post_init__(self) -> None:
        check_integer("n_physical_cores", self.n_physical_cores, minimum=1)
        check_integer("smt", self.smt, minimum=1)
        if not self.controllers and self.bus is None:
            raise ValidationError(
                f"processor {self.index}: needs a controller or a bus path")

    @property
    def n_logical_cores(self) -> int:
        return self.n_physical_cores * self.smt

    @property
    def last_level_cache(self) -> CacheLevel:
        if not self.caches:
            raise ValidationError(f"processor {self.index} has no caches")
        return self.caches[-1]


@dataclass(frozen=True)
class Machine:
    """A complete multicore system.

    For UMA machines ``shared_controller`` is set and per-processor
    ``bus`` objects route to it; for NUMA machines each processor owns its
    controllers and ``interconnect`` links them.
    """

    name: str
    architecture: MemoryArchitecture
    frequency: Frequency
    processors: tuple[Processor, ...]
    interconnect: Optional[Interconnect] = None
    shared_controller: Optional[MemoryController] = None

    def __post_init__(self) -> None:
        if not self.processors:
            raise ValidationError("machine needs at least one processor")
        if self.architecture is MemoryArchitecture.UMA:
            if self.shared_controller is None:
                raise ValidationError("UMA machine needs a shared controller")
            if self.interconnect is not None:
                raise ValidationError("UMA machine must not have an interconnect")
        else:
            if self.shared_controller is not None:
                raise ValidationError("NUMA machine must not have a shared controller")
            if self.interconnect is None:
                raise ValidationError("NUMA machine needs an interconnect")
            have = sorted(c.controller_id for c in self.controllers)
            if have != self.interconnect.nodes:
                raise ValidationError(
                    f"interconnect nodes {self.interconnect.nodes} do not match "
                    f"controller ids {have}")

    # -- core enumeration ----------------------------------------------------

    @property
    def n_cores(self) -> int:
        """Total logical cores (the paper's '8', '24', '48')."""
        cached = self.__dict__.get("_n_cores")
        if cached is None:
            cached = sum(p.n_logical_cores for p in self.processors)
            object.__setattr__(self, "_n_cores", cached)
        return cached

    @property
    def n_processors(self) -> int:
        return len(self.processors)

    def cores(self) -> tuple[Core, ...]:
        """All logical cores in LIKWID-style fill-package order.

        The enumeration is a pure function of the (frozen) topology, and
        it sits on the solver hot path — every allocation derives its
        per-processor placement from it — so the tuple is built once per
        machine instance and memoized.  Memo attributes live outside the
        dataclass fields: equality, hashing and cache fingerprints are
        untouched.
        """
        cached = self.__dict__.get("_cores")
        if cached is not None:
            return cached
        out: list[Core] = []
        logical = 0
        for proc in self.processors:
            for phys in range(proc.n_physical_cores):
                for thread in range(proc.smt):
                    sibling = None
                    if proc.smt > 1:
                        sibling = logical + 1 if thread == 0 else logical - 1
                    out.append(Core(
                        logical_id=logical,
                        physical_id=phys,
                        processor_index=proc.index,
                        smt_sibling=sibling,
                    ))
                    logical += 1
        frozen = tuple(out)
        object.__setattr__(self, "_cores", frozen)
        return frozen

    def core(self, logical_id: int) -> Core:
        cores = self.cores()
        check_integer("logical_id", logical_id, minimum=0,
                      maximum=len(cores) - 1)
        return cores[logical_id]

    def processor_of_core(self, logical_id: int) -> Processor:
        return self.processors[self.core(logical_id).processor_index]

    # -- memory system -------------------------------------------------------

    @property
    def controllers(self) -> tuple[MemoryController, ...]:
        """All controllers (the shared one for UMA)."""
        if self.architecture is MemoryArchitecture.UMA:
            assert self.shared_controller is not None
            return (self.shared_controller,)
        out: list[MemoryController] = []
        for proc in self.processors:
            out.extend(proc.controllers)
        return tuple(out)

    @property
    def n_controllers(self) -> int:
        return len(self.controllers)

    def controllers_of_processor(self, index: int) -> tuple[MemoryController, ...]:
        check_integer("index", index, minimum=0,
                      maximum=self.n_processors - 1)
        if self.architecture is MemoryArchitecture.UMA:
            assert self.shared_controller is not None
            return (self.shared_controller,)
        return self.processors[index].controllers

    def total_service_rate(self) -> float:
        """Sum of all controllers' ``mu`` in requests per cycle."""
        return sum(c.service_rate(self.frequency) for c in self.controllers)

    @property
    def last_level_cache_bytes(self) -> int:
        """Total LLC capacity across packages (paper: 8/12/10 MB figures
        are per machine description)."""
        return sum(p.last_level_cache.size_bytes for p in self.processors)

    def describe(self) -> str:
        """One-line summary used by reports."""
        return (f"{self.name}: {self.n_processors} processors x "
                f"{self.processors[0].n_physical_cores} cores"
                f"{' x ' + str(self.processors[0].smt) + ' SMT' if self.processors[0].smt > 1 else ''}"
                f" = {self.n_cores} logical cores, "
                f"{self.n_controllers} memory controller(s), "
                f"{self.architecture.value}, {self.frequency}")
