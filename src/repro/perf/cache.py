"""Bounded LRU memoization caches for the analytical solvers.

Two process-global caches back the fast path:

* :data:`flow_cache` — full ``runtime.flow`` solutions, keyed on the
  content hash of (machine, profile, allocation);
* :data:`mva_cache` — closed-network solutions: ``ClosedNetwork.solve``
  results and the flow solver's internal per-chain throughputs.

Both are enabled by default, bounded (LRU eviction) and observable: each
lookup bumps local hit/miss counters, mirrored into the active telemetry
session as ``perf.cache.<name>.hits`` / ``.misses`` / ``.evictions`` so
BENCH records and run manifests show cache effectiveness alongside the
solver-call counters they suppress.

Set ``REPRO_PERF_CACHE=0`` in the environment to disable both caches
(used by the regression gate to measure the uncached baseline), or call
:func:`set_enabled` / :func:`clear_caches` programmatically.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict

from repro.obs import state as _obs_state
from repro.obs.names import perf_cache_metric

#: Sentinel distinguishing "no cached value" from a cached ``None``.
MISS = object()


class MemoCache:
    """A bounded LRU map with hit/miss/eviction accounting.

    Keys are any hashable value (tuples, digest strings); values are
    treated as immutable — callers that cache structures with interior
    mutability must copy on the way in or out.

    Thread-safe: ``repro serve`` dispatches solver calls to worker
    threads, so ``get``/``put`` recency updates and evictions race
    without a lock (``move_to_end`` on a concurrently evicted key raises
    ``KeyError``; interleaved evictions corrupt the ordering).  Every
    ``OrderedDict`` access happens under one reentrant lock; telemetry
    mirroring stays outside it, ordered after the local counters.
    """

    __slots__ = ("name", "maxsize", "enabled", "hits", "misses",
                 "evictions", "_data", "_lock", "_metric_hits",
                 "_metric_misses", "_metric_evictions")

    def __init__(self, name: str, maxsize: int = 4096,
                 enabled: bool = True) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.name = name
        self.maxsize = maxsize
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.RLock()
        # Telemetry names are built once per cache, not per lookup.
        self._metric_hits = perf_cache_metric(name, "hits")
        self._metric_misses = perf_cache_metric(name, "misses")
        self._metric_evictions = perf_cache_metric(name, "evictions")

    def get(self, key) -> object:
        """The cached value, or :data:`MISS`; bumps hit/miss counters."""
        if not self.enabled:
            return MISS
        with self._lock:
            value = self._data.get(key, MISS)
            if value is MISS:
                self.misses += 1
            else:
                self._data.move_to_end(key)
                self.hits += 1
        tel = _obs_state._active
        if tel is not None:
            metric = self._metric_misses if value is MISS \
                else self._metric_hits
            tel.metrics.counter(metric).inc()
        return value

    def put(self, key, value) -> None:
        """Insert ``key -> value``, evicting the LRU entry when full."""
        if not self.enabled:
            return
        evicted = False
        with self._lock:
            data = self._data
            if key in data:
                data.move_to_end(key)
                data[key] = value
                return
            data[key] = value
            if len(data) > self.maxsize:
                data.popitem(last=False)
                self.evictions += 1
                evicted = True
        if evicted:
            tel = _obs_state._active
            if tel is not None:
                tel.metrics.counter(self._metric_evictions).inc()

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are cumulative)."""
        with self._lock:
            self._data.clear()

    def stats(self) -> dict:
        """Plain-dict summary (mirrors the telemetry counters)."""
        with self._lock:
            size = len(self._data)
            hits, misses = self.hits, self.misses
            evictions = self.evictions
        total = hits + misses
        return {
            "name": self.name,
            "size": size,
            "maxsize": self.maxsize,
            "enabled": self.enabled,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": hits / total if total else 0.0,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key) -> bool:
        if not self.enabled:
            return False
        with self._lock:
            return key in self._data


def _env_enabled() -> bool:
    return os.environ.get("REPRO_PERF_CACHE", "1") not in ("0", "false", "")


#: Full flow solutions; one entry per (machine, profile, allocation).
flow_cache = MemoCache("flow", maxsize=4096, enabled=_env_enabled())
#: Closed-network solutions (MVA results and per-chain throughputs).
mva_cache = MemoCache("mva", maxsize=32768, enabled=_env_enabled())

_ALL = (flow_cache, mva_cache)


def set_enabled(flag: bool) -> None:
    """Enable or disable both solver caches (disabling also clears them)."""
    for cache in _ALL:
        cache.enabled = flag
        if not flag:
            cache.clear()


def caches_enabled() -> bool:
    """True when the solver caches are active."""
    return all(c.enabled for c in _ALL)


def clear_caches() -> None:
    """Empty both solver caches (size goes to zero; counters persist)."""
    for cache in _ALL:
        cache.clear()


def cache_stats() -> dict[str, dict]:
    """``{cache name: stats dict}`` for every solver cache."""
    return {c.name: c.stats() for c in _ALL}


def configure(flow_maxsize: int | None = None,
              mva_maxsize: int | None = None) -> None:
    """Adjust cache size bounds; shrinking evicts LRU entries."""
    for cache, maxsize in ((flow_cache, flow_maxsize),
                           (mva_cache, mva_maxsize)):
        if maxsize is None:
            continue
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        with cache._lock:
            cache.maxsize = maxsize
            while len(cache._data) > maxsize:
                cache._data.popitem(last=False)
                cache.evictions += 1
