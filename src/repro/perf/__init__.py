"""Fast-path performance layer: solver memoization and cache policy.

``repro.perf`` holds the content-addressed caches that let repeated
analytical solves — identical (machine, profile, allocation) triples in
``runtime.flow`` and identical closed networks in ``qnet.mva`` — return
previously computed results bit-identically instead of re-running the
MVA recursions.  Hit/miss/eviction counters are mirrored into the
``repro.obs`` telemetry session as ``perf.cache.<name>.*``.

Disable with ``REPRO_PERF_CACHE=0`` or :func:`set_enabled`.
"""

from repro.perf.cache import (
    MISS,
    MemoCache,
    cache_stats,
    caches_enabled,
    clear_caches,
    configure,
    flow_cache,
    mva_cache,
    set_enabled,
)
from repro.perf.keys import fingerprint, flow_key, mva_key

__all__ = [
    "MISS",
    "MemoCache",
    "cache_stats",
    "caches_enabled",
    "clear_caches",
    "configure",
    "fingerprint",
    "flow_cache",
    "flow_key",
    "mva_cache",
    "mva_key",
    "set_enabled",
]
