"""Content-addressed cache keys for solver memoization.

A cache key must identify a solver input *by value*, not by object
identity: two :class:`~repro.machine.topology.Machine` instances built
from the same preset must map to the same key, and any change to any
field — a DRAM timing, a burst SCV, an allocation width — must change
it.  The canonicaliser below walks an object graph (dataclasses, enums,
containers, plain value objects) and emits a deterministic token stream;
the SHA-256 of that stream is the fingerprint.

Floats are tokenised with :meth:`float.hex` so the key captures the
exact bit pattern — a cache hit is therefore guaranteed to correspond to
a bit-identical solver input, which is what makes cached and uncached
solves interchangeable.

Fingerprints of immutable hot objects (machines, calibrated profiles)
are memoized by object identity so the canonical walk happens once per
object, not once per solve.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib

#: Identity-memo bound: entries hold strong references (keeping ``id()``
#: values valid), so the memo is cleared wholesale when it fills up.
_MEMO_MAX = 1024

_fingerprint_memo: dict[int, tuple[object, str]] = {}


def _tokens(obj: object, out: list[str]) -> None:
    """Append the canonical token stream of ``obj`` to ``out``."""
    if obj is None or isinstance(obj, (bool, int, str)):
        out.append(repr(obj))
    elif isinstance(obj, float):
        out.append(obj.hex())
    elif isinstance(obj, enum.Enum):
        out.append(f"{type(obj).__name__}.{obj.name}")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out.append(type(obj).__name__)
        out.append("(")
        for f in dataclasses.fields(obj):
            out.append(f.name)
            _tokens(getattr(obj, f.name), out)
        out.append(")")
    elif isinstance(obj, (list, tuple)):
        out.append("[")
        for item in obj:
            _tokens(item, out)
        out.append("]")
    elif isinstance(obj, (set, frozenset)):
        out.append("{")
        for item in sorted(obj, key=repr):
            _tokens(item, out)
        out.append("}")
    elif isinstance(obj, dict):
        out.append("{")
        for k in sorted(obj, key=repr):
            _tokens(k, out)
            out.append(":")
            _tokens(obj[k], out)
        out.append("}")
    elif isinstance(obj, (bytes, bytearray)):
        out.append(bytes(obj).hex())
    elif hasattr(obj, "__cache_tokens__"):
        # Objects wrapping non-canonicalisable state (e.g. a graph
        # library's structures) expose their value identity explicitly.
        out.append(type(obj).__name__)
        _tokens(obj.__cache_tokens__(), out)
    elif hasattr(obj, "__dict__"):
        # Plain value objects (e.g. Interconnect): canonicalise their
        # attribute dict.  Private/computed attributes participate too,
        # which is conservative — at worst it splits a would-be hit.
        out.append(type(obj).__name__)
        _tokens(vars(obj), out)
    else:
        raise TypeError(
            f"cannot canonicalise {type(obj).__name__!r} for cache keying")


def fingerprint(obj: object) -> str:
    """SHA-256 hex digest of the canonical token stream of ``obj``."""
    out: list[str] = []
    _tokens(obj, out)
    return hashlib.sha256("\x1f".join(out).encode("utf-8")).hexdigest()


def cached_fingerprint(obj: object) -> str:
    """Like :func:`fingerprint`, memoized by object identity.

    Safe only for effectively-immutable objects (frozen dataclasses);
    both hot callers — machines and calibrated profiles — qualify.
    """
    key = id(obj)
    hit = _fingerprint_memo.get(key)
    if hit is not None and hit[0] is obj:
        return hit[1]
    digest = fingerprint(obj)
    if len(_fingerprint_memo) >= _MEMO_MAX:
        _fingerprint_memo.clear()
    _fingerprint_memo[key] = (obj, digest)
    return digest


def flow_key(profile, machine, alloc) -> str:
    """Cache key for one ``runtime.flow.solve_flow`` input.

    Keyed on machine topology, memory profile, and core allocation
    (population + thread count); the solver is a pure function of these.
    """
    return "|".join((
        "flow",
        cached_fingerprint(machine),
        cached_fingerprint(profile),
        str(alloc.n_active),
        str(alloc.n_threads),
    ))


def mva_key(stations, population: int, method: str) -> tuple:
    """Cache key for one ``ClosedNetwork.solve`` input.

    Station order and names matter (the result reports per-station
    residence times by name), so the key preserves both.
    """
    return (
        "mva", method, population,
        tuple((type(s).__name__, s.name, s.demand,
               getattr(s, "channels", 1), getattr(s, "scv", 1.0))
              for s in stations),
    )


def clear_memo() -> None:
    """Drop the identity-memoized fingerprints (used by tests)."""
    _fingerprint_memo.clear()
