"""The machine-repairman model (M/M/1//N).

The single-processor memory system *is* a machine-repairman model: ``N``
cores ("machines") compute for an exponential think time ``Z`` between
off-chip requests, then queue at the memory controller (the "repairman")
for exponential service ``1/mu``.  This closed form is used to cross-check
the MVA solver and the DES engine against each other in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_integer, check_positive


@dataclass(frozen=True)
class MachineRepairman:
    """M/M/1//N: ``n`` customers, think rate ``1/z``, service rate ``mu``."""

    n: int
    think_time: float
    service_time: float

    def __post_init__(self) -> None:
        check_integer("n", self.n, minimum=1)
        check_positive("think_time", self.think_time)
        check_positive("service_time", self.service_time)

    def _probabilities(self) -> list[float]:
        """Stationary distribution of the number of customers at the server.

        ``p_k ∝ N!/(N-k)! * (s/z)^k`` for k = 0..N.
        """
        ratio = self.service_time / self.think_time
        terms = []
        log_term = 0.0
        for k in range(self.n + 1):
            if k > 0:
                log_term += math.log((self.n - k + 1) * ratio)
            terms.append(log_term)
        m = max(terms)
        weights = [math.exp(t - m) for t in terms]
        total = sum(weights)
        return [w / total for w in weights]

    @property
    def utilisation(self) -> float:
        """Probability the server is busy (1 - p0)."""
        return 1.0 - self._probabilities()[0]

    @property
    def throughput(self) -> float:
        """Request completions per unit time: U/s."""
        return self.utilisation / self.service_time

    @property
    def mean_customers_at_server(self) -> float:
        probs = self._probabilities()
        return sum(k * p for k, p in enumerate(probs))

    @property
    def mean_response(self) -> float:
        """Mean time at the server per request (interactive response law).

        ``R = N/X - Z``.
        """
        return self.n / self.throughput - self.think_time

    @property
    def cycle_time(self) -> float:
        """Think plus response: mean duration of one request cycle."""
        return self.think_time + self.mean_response
