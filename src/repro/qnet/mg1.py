"""M/G/1 queue via the Pollaczek-Khinchine formula.

DRAM service is not exponential: a request hitting an open row is served
much faster than one causing a row conflict, giving a two-point service
distribution.  The measurement substrate therefore services requests with
a general distribution, and P-K supplies its mean waiting time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import (
    ValidationError,
    check_nonnegative,
    check_positive,
)


@dataclass(frozen=True)
class MG1:
    """An M/G/1 queue described by arrival rate and service moments.

    Parameters
    ----------
    lam:
        Poisson arrival rate.
    mean_service:
        E[S] of the service distribution.
    scv_service:
        Squared coefficient of variation of service, ``Var[S]/E[S]^2``;
        0 recovers M/D/1, 1 recovers M/M/1.
    """

    lam: float
    mean_service: float
    scv_service: float

    def __post_init__(self) -> None:
        check_positive("lam", self.lam)
        check_positive("mean_service", self.mean_service)
        check_nonnegative("scv_service", self.scv_service)
        if self.rho >= 1.0:
            raise ValidationError(
                f"unstable M/G/1: rho={self.rho:.4f} >= 1")

    @property
    def rho(self) -> float:
        """Utilisation ``lam * E[S]``."""
        return self.lam * self.mean_service

    @property
    def second_moment_service(self) -> float:
        """E[S^2] = (1 + scv) E[S]^2."""
        return (1.0 + self.scv_service) * self.mean_service ** 2

    @property
    def mean_wait(self) -> float:
        """Pollaczek-Khinchine: Wq = lam E[S^2] / (2 (1 - rho))."""
        return self.lam * self.second_moment_service / (2.0 * (1.0 - self.rho))

    @property
    def mean_response(self) -> float:
        """W = Wq + E[S]."""
        return self.mean_wait + self.mean_service

    @property
    def mean_number_in_queue(self) -> float:
        """Lq = lam Wq."""
        return self.lam * self.mean_wait

    @property
    def mean_number_in_system(self) -> float:
        """L = lam W."""
        return self.lam * self.mean_response


def two_point_service_moments(fast: float, slow: float,
                              p_slow: float) -> tuple[float, float]:
    """Mean and SCV of a two-point service time (row hit vs row conflict).

    Returns ``(mean, scv)`` for service that takes ``fast`` with
    probability ``1 - p_slow`` and ``slow`` with probability ``p_slow``.
    """
    check_positive("fast", fast)
    check_positive("slow", slow)
    if not 0.0 <= p_slow <= 1.0:
        raise ValidationError(f"p_slow={p_slow} must be in [0, 1]")
    if slow < fast:
        raise ValidationError("slow service must be >= fast service")
    mean = (1.0 - p_slow) * fast + p_slow * slow
    second = (1.0 - p_slow) * fast ** 2 + p_slow * slow ** 2
    var = second - mean ** 2
    return mean, var / (mean ** 2)
