"""G/G/1 waiting-time approximations.

The flow-level measurement substrate needs the waiting time of a queue fed
by *bursty* (non-Poisson) arrivals.  The standard engineering tool is the
Allen-Cunneen / Kraemer-Langenbach-Belz family of approximations, which
scale the M/M/1 wait by ``(ca2 + cs2)/2`` with a correction factor for
``ca2 < 1``.
"""

from __future__ import annotations

import math

from repro.obs import names as _names, state as _obs_state
from repro.util.validation import (
    ValidationError,
    check_nonnegative,
    check_positive,
)


def allen_cunneen_wait(lam: float, mu: float, ca2: float, cs2: float) -> float:
    """Allen-Cunneen G/G/1 mean queue wait.

    ``Wq ~= ((ca2 + cs2)/2) * rho/(1 - rho) * (1/mu)``.

    Exact for M/M/1 (ca2 = cs2 = 1) and for M/G/1 in the P-K sense.
    """
    check_positive("lam", lam)
    check_positive("mu", mu)
    check_nonnegative("ca2", ca2)
    check_nonnegative("cs2", cs2)
    rho = lam / mu
    if rho >= 1.0:
        raise ValidationError(f"unstable G/G/1: rho={rho:.4f} >= 1")
    return ((ca2 + cs2) / 2.0) * (rho / (1.0 - rho)) / mu


def klb_correction(rho: float, ca2: float, cs2: float) -> float:
    """Kraemer-Langenbach-Belz correction factor ``g``.

    For ``ca2 <= 1`` the plain Allen-Cunneen form overestimates the wait;
    KLB multiplies by ``exp(-2(1-rho)(1-ca2)^2 / (3 rho (ca2+cs2)))``.
    For ``ca2 > 1`` the factor is
    ``exp(-(1-rho)(ca2-1)/(ca2 + 4 cs2))``.
    """
    if not 0.0 < rho < 1.0:
        raise ValidationError(f"rho={rho} must be in (0, 1)")
    check_nonnegative("ca2", ca2)
    check_nonnegative("cs2", cs2)
    if ca2 + cs2 == 0.0:
        return 1.0  # D/D/1 never waits; factor is irrelevant.
    if ca2 <= 1.0:
        return math.exp(-2.0 * (1.0 - rho) * (1.0 - ca2) ** 2
                        / (3.0 * rho * (ca2 + cs2)))
    return math.exp(-(1.0 - rho) * (ca2 - 1.0) / (ca2 + 4.0 * cs2))


def gg1_wait(lam: float, mu: float, ca2: float, cs2: float,
             corrected: bool = True) -> float:
    """G/G/1 mean queue wait, Allen-Cunneen with optional KLB correction.

    This is the primitive the measurement substrate uses to make bursty
    small-problem traffic wait *less at low load but more variably*, and
    saturated large-problem traffic behave like the paper's smooth M/M/1.
    """
    wq = allen_cunneen_wait(lam, mu, ca2, cs2)
    if corrected:
        rho = lam / mu
        wq *= klb_correction(rho, ca2, cs2)
    tel = _obs_state._active
    if tel is not None:
        tel.metrics.counter(_names.QNET_GG1_CALLS).inc()
    return wq


def gg1_response(lam: float, mu: float, ca2: float, cs2: float,
                 corrected: bool = True) -> float:
    """Mean response time W = Wq + 1/mu of the approximate G/G/1."""
    return gg1_wait(lam, mu, ca2, cs2, corrected=corrected) + 1.0 / mu
