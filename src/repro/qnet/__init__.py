"""Queueing-theory substrate.

Closed-form and numeric solvers for the queueing systems this reproduction
relies on:

* open single-server queues — :mod:`repro.qnet.mm1` (the paper's model
  primitive), :mod:`repro.qnet.mg1` (Pollaczek-Khinchine),
  :mod:`repro.qnet.gg1` (Allen-Cunneen approximation used by the
  flow-level measurement substrate to inject burstiness);
* multi-server Erlang-C — :mod:`repro.qnet.mmc` (multi-channel memory
  controllers);
* closed networks — :mod:`repro.qnet.mva` exact and Schweitzer approximate
  Mean Value Analysis, which is how the *simulated machine* computes cycle
  counts: ``n`` cores cycle between a compute "think" state and queueing
  at bus/controller/interconnect stations.

The analytical model in :mod:`repro.core` deliberately uses only the open
M/M/1 form, exactly as the paper does; everything richer lives here and in
the measurement substrate, which keeps the model-vs-measurement comparison
honest.
"""

from repro.qnet.bounds import OperationalBounds
from repro.qnet.gg1 import allen_cunneen_wait, gg1_wait
from repro.qnet.mg1 import MG1
from repro.qnet.mm1 import MM1
from repro.qnet.mmc import MMc, erlang_c
from repro.qnet.mva import (
    ClosedNetwork,
    DelayStation,
    MVAResult,
    QueueingStation,
    Station,
    exact_mva,
    schweitzer_amva,
)
from repro.qnet.repairman import MachineRepairman

__all__ = [
    "MM1",
    "MMc",
    "erlang_c",
    "MG1",
    "gg1_wait",
    "allen_cunneen_wait",
    "Station",
    "QueueingStation",
    "DelayStation",
    "ClosedNetwork",
    "MVAResult",
    "exact_mva",
    "schweitzer_amva",
    "MachineRepairman",
    "OperationalBounds",
]
