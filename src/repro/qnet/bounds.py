"""Operational bounds analysis for closed systems.

Model-free sanity rails around the MVA solutions: with total service
demand ``D = sum D_i``, bottleneck demand ``D_max`` and think time ``Z``,
any closed interactive system obeys (Denning & Buzen's operational laws)

    ``X(N) <= min(N / (D + Z), 1 / D_max)``
    ``X(N) >= N / (N D + Z)``          (pessimistic: full queueing)
    ``R(N) >= max(D, N D_max - Z)``

The test suite checks every MVA solution against these bounds, and the
capacity-planning example uses the knee ``N* = (D + Z) / D_max`` — the
population where the optimistic bounds cross — as a first estimate of
the worthwhile core count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.qnet.mva import ClosedNetwork, DelayStation, QueueingStation
from repro.util.validation import (
    ValidationError,
    check_integer,
    check_nonnegative,
)


@dataclass(frozen=True)
class OperationalBounds:
    """Asymptotic bounds for one closed network."""

    total_demand: float
    max_demand: float
    think_time: float

    def __post_init__(self) -> None:
        check_nonnegative("total_demand", self.total_demand)
        check_nonnegative("max_demand", self.max_demand)
        check_nonnegative("think_time", self.think_time)
        if self.max_demand > self.total_demand:
            raise ValidationError(
                "bottleneck demand cannot exceed total demand")
        if self.total_demand <= 0:
            raise ValidationError("network must have positive demand")

    @classmethod
    def of(cls, network: ClosedNetwork) -> "OperationalBounds":
        """Derive the bounds from a network's stations."""
        queue_demands = [s.demand for s in network.stations
                         if isinstance(s, QueueingStation)]
        think = sum(s.demand for s in network.stations
                    if isinstance(s, DelayStation))
        if not queue_demands:
            raise ValidationError("network has no queueing stations")
        return cls(total_demand=sum(queue_demands),
                   max_demand=max(queue_demands),
                   think_time=think)

    def throughput_upper(self, n: int) -> float:
        """``X(N) <= min(N/(D+Z), 1/D_max)``."""
        check_integer("n", n, minimum=0)
        if n == 0:
            return 0.0
        return min(n / (self.total_demand + self.think_time),
                   1.0 / self.max_demand)

    def throughput_lower(self, n: int) -> float:
        """Pessimistic bound ``X(N) >= N/(N D + Z)``."""
        check_integer("n", n, minimum=0)
        if n == 0:
            return 0.0
        return n / (n * self.total_demand + self.think_time)

    def response_lower(self, n: int) -> float:
        """``R(N) >= max(D, N D_max - Z)``."""
        check_integer("n", n, minimum=1)
        return max(self.total_demand,
                   n * self.max_demand - self.think_time)

    @property
    def knee_population(self) -> float:
        """``N* = (D + Z)/D_max``: where the optimistic bounds cross.

        Below N* the system is latency-limited (adding customers adds
        throughput); above it the bottleneck saturates and extra
        customers only queue — the operational-analysis version of the
        paper's "number of cores that maximises speedup".
        """
        return (self.total_demand + self.think_time) / self.max_demand
