"""M/M/c (Erlang-C) queue.

Memory controllers with multiple channels (the Intel NUMA testbed has
triple-channel DDR3, the AMD testbed dual-channel) are modelled as
multi-channel servers; Erlang-C gives their waiting behaviour in the
smooth-traffic limit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs import names as _names, state as _obs_state
from repro.util.validation import (
    ValidationError,
    check_integer,
    check_positive,
)


def erlang_c(c: int, offered_load: float) -> float:
    """Probability an arrival waits in an M/M/c queue.

    Parameters
    ----------
    c:
        Number of channels (>= 1).
    offered_load:
        ``a = lam/mu`` in Erlangs; requires ``a < c`` for stability.
    """
    check_integer("c", c, minimum=1)
    check_positive("offered_load", offered_load)
    a = offered_load
    if a >= c:
        raise ValidationError(f"unstable M/M/c: offered load {a} >= c={c}")
    # Sum a^k/k! computed iteratively to avoid overflow for large c.
    term = 1.0
    acc = term  # k = 0
    for k in range(1, c):
        term *= a / k
        acc += term
    term *= a / c  # a^c / c!
    tail = term * (c / (c - a))
    tel = _obs_state._active
    if tel is not None:
        tel.metrics.counter(_names.QNET_MMC_ERLANG_C_CALLS).inc()
    return tail / (acc + tail)


@dataclass(frozen=True)
class MMc:
    """An M/M/c queue with per-channel service rate ``mu``."""

    lam: float
    mu: float
    c: int

    def __post_init__(self) -> None:
        check_positive("lam", self.lam)
        check_positive("mu", self.mu)
        check_integer("c", self.c, minimum=1)
        if self.lam >= self.c * self.mu:
            raise ValidationError(
                f"unstable M/M/c: lam={self.lam} >= c*mu={self.c * self.mu}")

    @property
    def offered_load(self) -> float:
        """``a = lam/mu`` in Erlangs."""
        return self.lam / self.mu

    @property
    def rho(self) -> float:
        """Per-channel utilisation ``a/c``."""
        return self.offered_load / self.c

    @property
    def prob_wait(self) -> float:
        """Erlang-C probability that an arrival queues."""
        return erlang_c(self.c, self.offered_load)

    @property
    def mean_wait(self) -> float:
        """Wq = C(c, a) / (c mu - lam)."""
        return self.prob_wait / (self.c * self.mu - self.lam)

    @property
    def mean_response(self) -> float:
        """W = Wq + 1/mu."""
        return self.mean_wait + 1.0 / self.mu

    @property
    def mean_number_in_queue(self) -> float:
        """Lq = lam Wq (Little)."""
        return self.lam * self.mean_wait

    @property
    def mean_number_in_system(self) -> float:
        """L = lam W (Little)."""
        return self.lam * self.mean_response

    def equivalent_single_server_rate(self) -> float:
        """Service rate of the single fast server with the same capacity.

        The paper's model folds a multi-channel controller into one
        aggregate ``mu``; this helper documents that reduction
        (``c * mu``) and is used by the calibration code.
        """
        return self.c * self.mu


def mmc_wait_approx(c: int, mu: float, lam: float) -> float:
    """Sakasegawa's approximation to M/M/c Wq, used for non-integer c.

    ``Wq ~= rho^(sqrt(2(c+1)) - 1) / (c mu (1 - rho))`` with
    ``rho = lam/(c mu)``.  Accurate within a few percent over the range we
    use; exact Erlang-C is preferred when ``c`` is an integer.
    """
    check_positive("mu", mu)
    check_positive("lam", lam)
    if c <= 0:
        raise ValidationError("c must be > 0")
    rho = lam / (c * mu)
    if rho >= 1.0:
        raise ValidationError(f"unstable: rho={rho} >= 1")
    return rho ** (math.sqrt(2.0 * (c + 1.0)) - 1.0) / (c * mu * (1.0 - rho))
