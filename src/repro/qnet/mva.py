"""Mean Value Analysis for single-class closed queueing networks.

The simulated machines compute their "measured" cycle counts with a closed
network: the ``n`` active cores are customers that alternate between a
compute *delay* station (think time between off-chip requests) and FCFS
*queueing* stations (front-side bus, memory controller, interconnect hops).
This closed-network treatment captures the feedback the paper's open M/M/1
model deliberately abstracts away — cores that wait longer also inject more
slowly — which is exactly why fitting the paper's model to our measurements
produces the small-but-nonzero errors the paper reports.

Features:

* exact MVA recursion (Reiser & Lavenberg), vectorized over a *batch* of
  chains: the recursion core operates on ``[chains, stations]`` arrays so
  the coupled fixed point in :mod:`repro.runtime.flow` solves every
  processor's network in one numpy pass per Jacobi iteration;
* Schweitzer approximate MVA for large populations;
* Seidmann's transformation for multi-channel stations;
* a residual-service correction for non-exponential service (per-station
  SCV), the standard AMVA heuristic;
* content-addressed memoization of :meth:`ClosedNetwork.solve` through
  :mod:`repro.perf` — resolving an identical network at the same
  population returns the previously computed :class:`MVAResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import names as _names, state as _obs_state
from repro.perf.cache import MISS as _MISS, mva_cache as _mva_cache
from repro.perf.keys import mva_key as _mva_key
from repro.resilience.errors import ConvergenceError
from repro.util.validation import (
    ValidationError,
    check_integer,
    check_nonnegative,
    check_positive,
)


@dataclass(frozen=True)
class Station:
    """Base class for network stations.

    ``demand`` is the *service demand* per customer cycle: mean service
    time multiplied by visit count.
    """

    name: str
    demand: float

    def __post_init__(self) -> None:
        check_nonnegative("demand", self.demand)


@dataclass(frozen=True)
class DelayStation(Station):
    """Infinite-server station: pure think time, no queueing."""


@dataclass(frozen=True)
class QueueingStation(Station):
    """FCFS station with ``channels`` identical servers.

    ``scv`` is the squared coefficient of variation of the service time
    (1 = exponential).  Values above one lengthen the residual service seen
    by arrivals; this is how DRAM row-conflict variability and traffic
    burstiness enter the measurement substrate.
    """

    channels: int = 1
    scv: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        check_integer("channels", self.channels, minimum=1)
        check_nonnegative("scv", self.scv)


@dataclass(frozen=True)
class MVAResult:
    """Solution of a closed network for one population size."""

    population: int
    throughput: float                   # customer cycles per unit time
    cycle_time: float                   # mean time for one full cycle
    station_names: tuple[str, ...]
    residence: tuple[float, ...]        # per-station residence time per cycle
    queue_lengths: tuple[float, ...]    # time-average customers at station
    utilisations: tuple[float, ...]     # per-channel utilisation

    def residence_of(self, name: str) -> float:
        """Residence time per cycle at the named station."""
        return self.residence[self._idx(name)]

    def queue_length_of(self, name: str) -> float:
        return self.queue_lengths[self._idx(name)]

    def utilisation_of(self, name: str) -> float:
        return self.utilisations[self._idx(name)]

    def _idx(self, name: str) -> int:
        try:
            return self.station_names.index(name)
        except ValueError:
            raise ValidationError(
                f"no station named {name!r}; have {self.station_names}") from None


def _expand_multiserver(stations: list[Station]) -> tuple[list[Station], list[int]]:
    """Apply Seidmann's transformation to multi-channel stations.

    An ``m``-channel queueing station with demand ``D`` becomes a
    single-channel station with demand ``D/m`` in series with a delay
    station of demand ``D (m-1)/m``.  ``mapping[i]`` gives, for each
    expanded station, the index of the original station it contributes to.
    """
    expanded: list[Station] = []
    mapping: list[int] = []
    for i, st in enumerate(stations):
        if isinstance(st, QueueingStation) and st.channels > 1:
            m = st.channels
            expanded.append(QueueingStation(
                name=st.name, demand=st.demand / m, channels=1, scv=st.scv))
            mapping.append(i)
            expanded.append(DelayStation(
                name=f"{st.name}~seidmann", demand=st.demand * (m - 1) / m))
            mapping.append(i)
        else:
            expanded.append(st)
            mapping.append(i)
    return expanded, mapping


def _station_arrays(
        stations: list[Station]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(demands, is_queue, scv)`` vectors for a station list."""
    demands = np.array([s.demand for s in stations])
    is_queue = np.array([isinstance(s, QueueingStation) for s in stations])
    scv = np.array([s.scv if isinstance(s, QueueingStation) else 1.0
                    for s in stations])
    return demands, is_queue, scv


class ClosedNetwork:
    """A single-class closed queueing network.

    Parameters
    ----------
    stations:
        The service stations each customer visits once per cycle (visit
        ratios are folded into the demands).
    """

    def __init__(self, stations: list[Station]) -> None:
        if not stations:
            raise ValidationError("network needs at least one station")
        names = [s.name for s in stations]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate station names in {names}")
        self.stations = list(stations)

    def solve(self, population: int, method: str = "exact") -> MVAResult:
        """Solve for mean-value metrics at the given population.

        ``method`` is ``"exact"`` (recursion over 1..N) or ``"schweitzer"``
        (fixed-point approximation, O(iterations) independent of N).

        Solutions are memoized in :data:`repro.perf.mva_cache`, keyed on
        the station values, the population and the method; a repeat solve
        of an identical network returns the cached (immutable) result.

        Under telemetry, every call — memoized or not — lands one
        observation in the ``latency.mva.solve_seconds`` histogram.
        """
        tel = _obs_state._active
        if tel is None:
            return self._solve(population, method)
        with tel.metrics.timer(_names.LATENCY_MVA_SOLVE_SECONDS):
            return self._solve(population, method)

    def _solve(self, population: int, method: str) -> MVAResult:
        check_integer("population", population, minimum=0)
        if method not in ("exact", "schweitzer"):
            raise ValidationError(f"unknown MVA method {method!r}")
        key = _mva_key(self.stations, population, method)
        hit = _mva_cache.get(key)
        if hit is not _MISS:
            return hit
        if method == "exact":
            result = exact_mva(self, population)
        else:
            result = schweitzer_amva(self, population)
        _mva_cache.put(key, result)
        return result


def _collapse(result_names: list[str], mapping: list[int],
              stations: list[Station], population: int, x: float,
              residence: np.ndarray, qlen: np.ndarray,
              util: np.ndarray) -> MVAResult:
    """Fold Seidmann-expanded stations back onto the originals."""
    n_orig = len(stations)
    r = np.zeros(n_orig)
    q = np.zeros(n_orig)
    u = np.zeros(n_orig)
    for j, orig in enumerate(mapping):
        r[orig] += residence[j]
        q[orig] += qlen[j]
        # Utilisation of the original station is that of its queueing part;
        # delay parts report zero utilisation.
        u[orig] = max(u[orig], util[j])
    cycle = float(r.sum()) if x == 0 else population / x
    return MVAResult(
        population=population,
        throughput=x,
        cycle_time=cycle,
        station_names=tuple(s.name for s in stations),
        residence=tuple(float(v) for v in r),
        queue_lengths=tuple(float(v) for v in q),
        utilisations=tuple(float(v) for v in u),
    )


def _exact_recursion(demands: np.ndarray, is_queue: np.ndarray,
                     scv: np.ndarray, populations: np.ndarray):
    """Batched exact-MVA recursion on ``[chains, stations]`` arrays.

    Runs the Reiser–Lavenberg recursion for every chain (row) at once,
    with the SCV residual correction.  Chains may have different
    populations: a chain's row freezes once ``k`` exceeds its population,
    so each row ends up holding that chain's solution at its own N.

    Every operation is elementwise per row (the only reduction is the
    row-local ``sum(axis=1)``), so a chain's solution is bit-identical
    whether it is solved alone or inside any batch — the property the
    memoization layer relies on.

    Returns ``(x, residence, q, u)``: throughputs ``[C]`` and per-station
    arrays ``[C, S]``.
    """
    qd = np.where(is_queue, demands, 0.0)
    dd = np.where(is_queue, 0.0, demands)
    scv_term = qd * (scv - 1.0) * 0.5
    n_chains, _ = demands.shape
    q = np.zeros_like(demands)
    u = np.zeros_like(demands)
    x = np.zeros(n_chains)
    residence = demands.copy()
    for k in range(1, int(populations.max()) + 1):
        res_new = dd + qd * (1.0 + q) + u * scv_term
        total = res_new.sum(axis=1)
        if np.any(total <= 0.0):
            raise ValidationError("network has zero total demand")
        x_new = k / total
        q_new = x_new[:, None] * res_new
        u_new = np.minimum(x_new[:, None] * qd, 1.0)
        live = populations >= k
        if live.all():
            residence, x, q, u = res_new, x_new, q_new, u_new
        else:
            live_col = live[:, None]
            residence = np.where(live_col, res_new, residence)
            x = np.where(live, x_new, x)
            q = np.where(live_col, q_new, q)
            u = np.where(live_col, u_new, u)
    return x, residence, q, u


def exact_mva(network: ClosedNetwork, population: int) -> MVAResult:
    """Exact MVA recursion with SCV residual correction.

    For exponential FCFS stations this is the exact product-form solution;
    with ``scv != 1`` the residual-time term
    ``U_i (scv - 1)/2 * D_i`` is added to the arrival-instant backlog,
    the standard (heuristic) extension.
    """
    check_integer("population", population, minimum=0)
    stations, mapping = _expand_multiserver(network.stations)
    n = len(stations)
    demands, is_queue, scv = _station_arrays(stations)
    if population == 0:
        z = np.zeros(n)
        return _collapse([s.name for s in stations], mapping,
                         network.stations, 0, 0.0, np.zeros(n), z, z)
    x, residence, q, u = _exact_recursion(
        demands[None, :], is_queue[None, :], scv[None, :],
        np.array([population]))
    tel = _obs_state._active
    if tel is not None:
        tel.metrics.counter(_names.QNET_MVA_EXACT_CALLS).inc()
        tel.metrics.counter(_names.QNET_MVA_EXACT_ITERATIONS).inc(population)
    return _collapse([s.name for s in stations], mapping, network.stations,
                     population, float(x[0]), residence[0], q[0], u[0])


def exact_throughputs(demands: np.ndarray, is_queue: np.ndarray,
                      scv: np.ndarray, populations: np.ndarray) -> np.ndarray:
    """Throughputs of a batch of single-channel closed chains.

    The fast-path entry used by the flow solver: rows are raw station
    vectors (single-channel queueing and delay stations only — no
    Seidmann expansion is applied), ``populations`` the per-chain
    customer counts (>= 1).  Returns the per-chain throughput array.

    Telemetry counts each row as one ``qnet.mva.exact.calls`` (a batch of
    C chains does the work of C scalar solves) plus one
    ``qnet.mva.exact.batches``, and times the recursion into the
    ``latency.mva.batch_seconds`` histogram.
    """
    tel = _obs_state._active
    if tel is None:
        x, _, _, _ = _exact_recursion(demands, is_queue, scv, populations)
        return x
    with tel.metrics.timer(_names.LATENCY_MVA_BATCH_SECONDS):
        x, _, _, _ = _exact_recursion(demands, is_queue, scv, populations)
    reg = tel.metrics
    reg.counter(_names.QNET_MVA_EXACT_CALLS).inc(len(populations))
    reg.counter(_names.QNET_MVA_EXACT_ITERATIONS).inc(int(populations.sum()))
    reg.counter(_names.QNET_MVA_EXACT_BATCHES).inc()
    return x


def exact_throughputs_cells(
        blocks: "list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]",
) -> list[np.ndarray]:
    """Fused multi-cell exact MVA over a ``[cell, chain, station]`` tensor.

    ``blocks`` holds one ``(demands, is_queue, scv, populations)`` tuple
    per grid cell, each a ``[chain, station]`` batch as accepted by
    :func:`exact_throughputs`.  Cells sharing a station width are
    concatenated into a single ``[cell x chain, station]`` recursion —
    the fused tensor flattened along its first two axes, which is exact
    because every recursion operation is row-independent — while cells
    of different widths run in separate passes: a row must never be
    padded beyond its own cell's width, or crossing numpy's pairwise-
    summation block boundaries could change the last ulp of its demand
    sums and break the bit-compatibility the memoization layer asserts.

    Telemetry accounting matches ``len(blocks)`` scalar-path calls: one
    ``qnet.mva.exact.calls`` per chain row, ``.iterations`` per customer,
    and one ``.batches`` plus one ``latency.mva.batch_seconds``
    observation per fused recursion.  Returns the per-cell throughput
    arrays in input order.
    """
    tel = _obs_state._active
    out: list[np.ndarray] = [np.empty(0)] * len(blocks)
    by_width: dict[int, list[int]] = {}
    for i, (d, _, _, _) in enumerate(blocks):
        by_width.setdefault(d.shape[1], []).append(i)
    for _, idxs in sorted(by_width.items()):
        if len(idxs) == 1:
            d, iq, sv, pops = blocks[idxs[0]]
        else:
            d = np.concatenate([blocks[i][0] for i in idxs])
            iq = np.concatenate([blocks[i][1] for i in idxs])
            sv = np.concatenate([blocks[i][2] for i in idxs])
            pops = np.concatenate([blocks[i][3] for i in idxs])
        if tel is None:
            x, _, _, _ = _exact_recursion(d, iq, sv, pops)
        else:
            with tel.metrics.timer(_names.LATENCY_MVA_BATCH_SECONDS):
                x, _, _, _ = _exact_recursion(d, iq, sv, pops)
            reg = tel.metrics
            reg.counter(_names.QNET_MVA_EXACT_CALLS).inc(len(pops))
            reg.counter(_names.QNET_MVA_EXACT_ITERATIONS).inc(int(pops.sum()))
            reg.counter(_names.QNET_MVA_EXACT_BATCHES).inc()
        off = 0
        for i in idxs:
            k = len(blocks[i][3])
            out[i] = x[off:off + k]
            off += k
    return out


def schweitzer_amva(network: ClosedNetwork, population: int,
                    tol: float = 1e-10, max_iter: int = 100_000,
                    strict: bool = False) -> MVAResult:
    """Schweitzer/Bard approximate MVA.

    Replaces the exact arrival theorem with
    ``Q_i(N-1) ~= Q_i(N) (N-1)/N`` and iterates to a fixed point.  Errors
    are typically under a few percent; used where the exact recursion over
    1..N would be wasteful.

    With ``strict=True`` a fixed point that has not converged after
    ``max_iter`` iterations raises
    :class:`~repro.resilience.errors.ConvergenceError` instead of being
    returned silently — the mode the degradation ladder
    (:func:`repro.resilience.solve_network`) runs it in, so a bad
    iterate falls through to the bounds rung.
    """
    check_integer("population", population, minimum=0)
    check_positive("tol", tol)
    stations, mapping = _expand_multiserver(network.stations)
    n = len(stations)
    demands, is_queue, scv = _station_arrays(stations)
    if population == 0:
        z = np.zeros(n)
        return _collapse([s.name for s in stations], mapping,
                         network.stations, 0, 0.0, np.zeros(n), z, z)

    # Loop-invariant station vectors, hoisted: queueing and delay demands
    # split so the residence update is pure elementwise arithmetic.
    qd = np.where(is_queue, demands, 0.0)
    dd = np.where(is_queue, 0.0, demands)
    scv_term = qd * (scv - 1.0) * 0.5
    shrink = (population - 1) / population

    q = np.full(n, population / n)
    x = 0.0
    residence = demands.copy()
    iterations = 0
    residual = float("inf")
    for iterations in range(1, max_iter + 1):
        u = np.minimum(x * qd, 1.0)
        residence = dd + qd * (1.0 + q * shrink) + u * scv_term
        total = float(residence.sum())
        if total <= 0:
            raise ValidationError("network has zero total demand")
        x = population / total
        q_new = x * residence
        residual = float(np.max(np.abs(q_new - q)))
        q = q_new
        if residual < tol:
            break
    tel = _obs_state._active
    if tel is not None:
        reg = tel.metrics
        reg.counter(_names.QNET_MVA_SCHWEITZER_CALLS).inc()
        reg.counter(_names.QNET_MVA_SCHWEITZER_ITERATIONS).inc(iterations)
        reg.histogram(_names.QNET_MVA_SCHWEITZER_RESIDUAL).observe(residual)
        if residual >= tol:
            reg.counter(_names.QNET_MVA_SCHWEITZER_NONCONVERGED).inc()
    if strict and residual >= tol:
        raise ConvergenceError(
            f"schweitzer AMVA: no convergence after {iterations} "
            f"iterations (residual {residual:.3e}, tol {tol:.1e})",
            site="qnet.mva.schweitzer", iterations=iterations,
            residual=residual, tol=tol, population=population)
    u = np.minimum(x * qd, 1.0)
    return _collapse([s.name for s in stations], mapping, network.stations,
                     population, x, residence, q, u)


def schweitzer_throughputs(demands: np.ndarray, is_queue: np.ndarray,
                           scv: np.ndarray, populations: np.ndarray,
                           tol: float = 1e-10,
                           max_iter: int = 100_000) -> np.ndarray:
    """Batched Schweitzer AMVA throughputs on ``[chains, stations]`` rows.

    The degraded counterpart of :func:`exact_throughputs` — same row
    layout (single-channel queueing and delay stations, padded rows
    allowed), O(iterations) independent of the populations, so the flow
    fixed point stays cheap when a chain's exact recursion is abandoned.
    Rows that have not converged after ``max_iter`` sweeps raise
    :class:`~repro.resilience.errors.ConvergenceError` — the caller is
    the ladder, which then falls to the bounds rung.
    """
    pops = populations.astype(float)
    if np.any(pops < 1):
        raise ValidationError("populations must be >= 1")
    qd = np.where(is_queue, demands, 0.0)
    dd = np.where(is_queue, 0.0, demands)
    scv_term = qd * (scv - 1.0) * 0.5
    n_chains, n_stations = demands.shape
    shrink = ((pops - 1.0) / pops)[:, None]
    q = np.full_like(demands, 1.0) * (pops[:, None] / n_stations)
    x = np.zeros(n_chains)
    iterations = 0
    residual = float("inf")
    for iterations in range(1, max_iter + 1):
        u = np.minimum(x[:, None] * qd, 1.0)
        residence = dd + qd * (1.0 + q * shrink) + u * scv_term
        total = residence.sum(axis=1)
        if np.any(total <= 0.0):
            raise ValidationError("network has zero total demand")
        x = pops / total
        q_new = x[:, None] * residence
        residual = float(np.max(np.abs(q_new - q)))
        q = q_new
        if residual < tol:
            break
    tel = _obs_state._active
    if tel is not None:
        reg = tel.metrics
        reg.counter(_names.QNET_MVA_SCHWEITZER_CALLS).inc(n_chains)
        reg.counter(_names.QNET_MVA_SCHWEITZER_ITERATIONS).inc(iterations)
        reg.histogram(_names.QNET_MVA_SCHWEITZER_RESIDUAL).observe(residual)
    if residual >= tol:
        if tel is not None:
            tel.metrics.counter(
                _names.QNET_MVA_SCHWEITZER_NONCONVERGED).inc(n_chains)
        raise ConvergenceError(
            f"batched schweitzer AMVA: no convergence after {iterations} "
            f"iterations (residual {residual:.3e}, tol {tol:.1e})",
            site="qnet.mva.schweitzer", iterations=iterations,
            residual=residual, tol=tol)
    return x


def bound_throughputs(demands: np.ndarray, is_queue: np.ndarray,
                      scv: np.ndarray, populations: np.ndarray) -> np.ndarray:
    """Asymptotic-bound throughputs: ``min(N/(D+Z), 1/D_max)`` per row.

    The last rung of the degradation ladder (see docs/RESILIENCE.md):
    no iteration at all, exact in the latency-limited and saturated
    asymptotes, optimistic in between.  ``scv`` is accepted for
    signature parity with the other batched solvers and ignored —
    operational bounds are distribution-free.
    """
    del scv  # distribution-free
    pops = populations.astype(float)
    qd = np.where(is_queue, demands, 0.0)
    total_q = qd.sum(axis=1)
    think = np.where(is_queue, 0.0, demands).sum(axis=1)
    d_max = qd.max(axis=1)
    if np.any(total_q + think <= 0.0):
        raise ValidationError("network has zero total demand")
    latency_bound = pops / (total_q + think)
    with np.errstate(divide="ignore"):
        saturation_bound = np.where(d_max > 0.0, 1.0 / d_max, np.inf)
    return np.minimum(latency_bound, saturation_bound)
