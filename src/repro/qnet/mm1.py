"""The M/M/1 queue — the paper's modelling primitive.

Equation (5) of the paper states that the mean number of cycles a memory
request spends at the controller is ``Creq = 1/(mu - lambda)``, i.e. the
M/M/1 mean response time with service rate ``mu`` and arrival rate
``lambda = n L`` when ``n`` cores each offer rate ``L``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import ValidationError, check_positive


@dataclass(frozen=True)
class MM1:
    """An M/M/1 queue with arrival rate ``lam`` and service rate ``mu``.

    All classic stationary metrics are exposed as properties.  Construction
    requires stability (``lam < mu``); use :meth:`is_stable` to probe a
    parameterisation first.
    """

    lam: float
    mu: float

    def __post_init__(self) -> None:
        check_positive("lam", self.lam)
        check_positive("mu", self.mu)
        if self.lam >= self.mu:
            raise ValidationError(
                f"unstable M/M/1: lam={self.lam} >= mu={self.mu}")

    @staticmethod
    def is_stable(lam: float, mu: float) -> bool:
        """True when an M/M/1 with these rates has a stationary regime."""
        return 0 < lam < mu

    @property
    def rho(self) -> float:
        """Utilisation ``lam/mu``."""
        return self.lam / self.mu

    @property
    def mean_response(self) -> float:
        """Mean time in system W = 1/(mu - lam): the paper's ``Creq``."""
        return 1.0 / (self.mu - self.lam)

    @property
    def mean_wait(self) -> float:
        """Mean time in queue Wq = rho/(mu - lam)."""
        return self.rho / (self.mu - self.lam)

    @property
    def mean_number_in_system(self) -> float:
        """L = rho/(1 - rho)."""
        return self.rho / (1.0 - self.rho)

    @property
    def mean_number_in_queue(self) -> float:
        """Lq = rho^2/(1 - rho)."""
        return self.rho * self.rho / (1.0 - self.rho)

    def prob_n(self, n: int) -> float:
        """Stationary probability of exactly ``n`` jobs in the system."""
        if n < 0:
            raise ValidationError("n must be >= 0")
        return (1.0 - self.rho) * self.rho ** n

    def prob_wait_exceeds(self, t: float) -> float:
        """P(response time > t) = exp(-(mu - lam) t)."""
        if t < 0:
            raise ValidationError("t must be >= 0")
        import math

        return math.exp(-(self.mu - self.lam) * t)


def creq(mu: float, lam: float) -> float:
    """Paper equation (5): cycles to service one off-chip request.

    Thin functional wrapper used by :mod:`repro.core.uniproc` so the model
    code reads like the paper.
    """
    check_positive("mu", mu)
    check_positive("lam", lam)
    if lam >= mu:
        raise ValidationError(f"saturated controller: lam={lam} >= mu={mu}")
    return 1.0 / (mu - lam)
