"""Regenerate paper Table IV: 1/C(n) colinearity R-squared grid."""


def test_table4(report):
    result = report("table4", fast=False)
    for mkey, grid in result.data.items():
        bursty = [v["measured"] for k, v in grid.items()
                  if k.startswith(("EP", "x264"))]
        contended = [v["measured"] for k, v in grid.items()
                     if not k.startswith(("EP", "x264"))]
        assert min(contended) > min(bursty), mkey
