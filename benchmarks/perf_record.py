"""Shared BENCH record helpers for the benchmark harness and the gate.

A *perf record* (``BENCH_<name>.json``, or ``BENCH_<name>_fast.json`` for
fast-mode runs) captures one benchmarked experiment run: wall time, the
telemetry metrics snapshot, and an ``environment`` block identifying the
machine that produced it.  ``benchmarks/conftest.py`` writes records
while the benchmark suite runs; ``benchmarks/check_regression.py``
compares fresh records against the committed baselines in
``benchmarks/perf/``.

Records are normalized so baselines compare across machines and
checkouts: the code version drops the volatile ``-dirty`` suffix, and
machine-dependent judgements (wall time) can be keyed off the
``environment.hostname`` field rather than assumed comparable.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import time

from repro import obs

#: Default output directory for perf records, relative to this file.
DEFAULT_PERF_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "perf")


def perf_dir() -> str | None:
    """The record output directory, or ``None`` when records are disabled.

    ``REPRO_BENCH_DIR`` overrides the default ``benchmarks/perf/``; an
    empty string disables record writing entirely.
    """
    configured = os.environ.get("REPRO_BENCH_DIR")
    if configured is not None:
        return configured or None  # empty string disables records
    return DEFAULT_PERF_DIR


def normalize_version(version: str) -> str:
    """Strip the ``-dirty`` suffix so records diff cleanly across checkouts."""
    return version[:-len("-dirty")] if version.endswith("-dirty") else version


def environment() -> dict:
    """The machine-identity block stamped into every record."""
    return {
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count(),
        "python_version": platform.python_version(),
    }


def record_filename(name: str, fast: bool = False) -> str:
    """``BENCH_<name>.json``, with a ``_fast`` suffix for fast-mode runs."""
    return f"BENCH_{name}_fast.json" if fast else f"BENCH_{name}.json"


#: Instrument-name prefix of the per-cell solve-latency histograms.
LATENCY_PREFIX = "latency."


def latency_block(snapshot: dict) -> dict:
    """Per-cell latency percentiles distilled from a metrics snapshot.

    One entry per ``latency.*`` histogram/timer series:
    ``{count, p50, p95, p99}`` in seconds — the SLO view the regression
    gate judges, separated from the full ``metrics`` block so older
    gate versions and human diffs need not dig through instrument
    summaries.
    """
    out: dict[str, dict] = {}
    for key, summary in snapshot.items():
        if not key.startswith(LATENCY_PREFIX):
            continue
        if not isinstance(summary, dict) or \
                summary.get("kind") not in ("histogram", "timer"):
            continue
        out[key] = {
            "count": summary.get("count", 0),
            "p50": summary.get("p50"),
            "p95": summary.get("p95"),
            "p99": summary.get("p99"),
        }
    return out


def build_record(name: str, result, wall_time_s: float, tel,
                 fast: bool = False) -> dict:
    """Assemble the serializable perf record for one experiment run."""
    snapshot = tel.metrics.snapshot()
    return {
        "benchmark": name,
        "fast": fast,
        "schema": obs.MANIFEST_SCHEMA,
        "version": normalize_version(obs.code_version()),
        "environment": environment(),
        "recorded_unix": time.time(),
        "wall_time_s": wall_time_s,
        "phase_timings": dict(result.phase_timings),
        "latency": latency_block(snapshot),
        "metrics": obs.wrap_snapshot(snapshot),
        "notes": list(result.notes),
    }


def write_perf_record(name: str, result, wall_time_s: float, tel,
                      fast: bool = False,
                      out_dir: str | None = None) -> str | None:
    """Write the perf record for one benchmarked experiment run.

    Returns the path written, or ``None`` when records are disabled via
    ``REPRO_BENCH_DIR=""`` (and no explicit ``out_dir`` was given).
    """
    if out_dir is None:
        out_dir = perf_dir()
        if out_dir is None:
            return None
    os.makedirs(out_dir, exist_ok=True)
    record = build_record(name, result, wall_time_s, tel, fast=fast)
    path = os.path.join(out_dir, record_filename(name, fast=fast))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def reset_solver_caches() -> None:
    """Start a benchmarked run cold so records compare across processes.

    The solver memoization caches (:mod:`repro.perf`) are process-global;
    without a reset, the second benchmark in one pytest process would
    measure warm-cache work and its counters would not be comparable to a
    cold run of the same code.
    """
    from repro.perf import clear_caches
    from repro.perf.keys import clear_memo

    clear_caches()
    clear_memo()


def generate_record(name: str, fast: bool = False,
                    out_dir: str | None = None) -> str | None:
    """Run one experiment cold under fresh telemetry; write its perf record."""
    from repro.experiments import run_experiment

    was_enabled = obs.enabled()
    tel = obs.enable(fresh=True)
    reset_solver_caches()
    t0 = time.perf_counter()
    try:
        result = run_experiment(name, fast=fast)
        wall = time.perf_counter() - t0
        return write_perf_record(name, result, wall, tel, fast=fast,
                                 out_dir=out_dir)
    finally:
        if not was_enabled:
            obs.disable()
