"""Regenerate paper Fig. 6: model vs measurement, EP.C (low contention)."""


def test_fig6(report):
    result = report("fig6", fast=False)
    for mkey, d in result.data.items():
        if mkey == "intel_uma":
            continue  # paper: UMA EP stays ~0 throughout
        assert d["negative_omega_in_package"], mkey
        assert d["omega_full"] > 0.3, mkey
