"""Regenerate paper Table III: problem-size descriptions."""


def test_table3(report):
    result = report("table3", fast=False)
    assert "CG.C" in result.data["sizes"]
