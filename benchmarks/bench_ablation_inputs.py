"""Regenerate the Section V regression-input ablation."""


def test_ablation_inputs(report):
    result = report("ablation_inputs", fast=False)
    amd = result.data["amd_numa"]
    # Paper: the AMD fit degrades sharply with three homogeneous inputs.
    assert amd["reduced"] >= amd["full"]
