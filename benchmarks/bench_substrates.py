"""Microbenchmarks of the substrates themselves.

Not a paper artefact: these time the building blocks (exact MVA, the
flow fixed point, the cache simulator, burst sampling) so performance
regressions in the simulation engine are visible.
"""

import numpy as np


def test_exact_mva_48(benchmark):
    from repro.qnet.mva import ClosedNetwork, DelayStation, QueueingStation

    net = ClosedNetwork([
        DelayStation("think", 50.0),
        QueueingStation("mc0", 1.0),
        QueueingStation("mc1", 1.0),
        QueueingStation("port", 0.4),
    ])
    result = benchmark(net.solve, 48)
    assert result.throughput > 0


def test_flow_solver_amd_full(benchmark):
    from repro.machine import CoreAllocation, amd_numa
    from repro.runtime.calibration import calibrate_profile
    from repro.runtime.flow import solve_flow

    machine = amd_numa()
    profile = calibrate_profile("CG", "C", machine)
    alloc = CoreAllocation.paper_policy(machine, 48)
    result = benchmark(solve_flow, profile, machine, alloc)
    assert result.total_cycles > 0


def test_measurement_sweep_intel_numa(benchmark):
    from repro.machine import intel_numa
    from repro.runtime.measurement import MeasurementRun

    machine = intel_numa()

    def sweep():
        return MeasurementRun("CG", "C", machine).sweep([1, 12, 24])

    result = benchmark(sweep)
    assert result[24].total_cycles > result[1].total_cycles


def test_cache_simulation_throughput(benchmark, rng=None):
    from repro.machine.caches import CacheConfig, CacheHierarchy
    from repro.workloads import get_workload

    hier = CacheHierarchy([
        CacheConfig("L1", 32, 8).to_level(),
        CacheConfig("L2", 512, 8).to_level(),
    ])
    trace = get_workload("CG").address_trace(50_000, rng=7)

    def run():
        hier.reset()
        return hier.access(trace)

    out = benchmark(run)
    assert out["llc_miss_mask"].shape == trace.shape


def test_burst_sampling_100k_windows(benchmark):
    from repro.counters.sampler import BurstSampler
    from repro.machine import intel_numa

    sampler = BurstSampler(intel_numa())
    trace = benchmark(sampler.sample, "CG", "A", None, 100_000)
    assert trace.n_windows == 100_000


def test_model_fit_and_validate(benchmark):
    from repro.core import fit_model, validate_model
    from repro.machine import intel_numa
    from repro.runtime.measurement import MeasurementRun

    machine = intel_numa()
    sweep = MeasurementRun("CG", "C", machine).sweep()

    def fit_validate():
        model = fit_model(machine, sweep)
        return validate_model(model, sweep)

    report = benchmark(fit_validate)
    assert report.mean_relative_error_cycles < 0.2


def test_fft3d_32cubed(benchmark):
    from repro.workloads.ft import fft3d

    rng = np.random.default_rng(7)
    grid = rng.random((32, 32, 32)) + 1j * rng.random((32, 32, 32))
    out = benchmark(fft3d, grid)
    assert np.allclose(out, np.fft.fftn(grid))


def test_penta_solve_4096_lines(benchmark):
    from repro.workloads.sp import model_bands, penta_solve

    rng = np.random.default_rng(7)
    bands = model_bands(4096, 64, rng)
    rhs = rng.random((4096, 64))
    x = benchmark(penta_solve, bands, rhs)
    assert np.all(np.isfinite(x))
