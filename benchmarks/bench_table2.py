"""Regenerate paper Table II: normalized cycle increases, all machines."""


def test_table2(report):
    result = report("table2", fast=False)
    rows = result.data["rows"]
    # 5 programs x 2 sizes x 3 machines x 2 core counts.
    assert len(rows) == 60
