"""Regenerate paper Table I (program inventory + kernel execution)."""


def test_table1(report):
    result = report("table1", fast=False)
    assert len(result.data["kernel_checksums"]) == 6
