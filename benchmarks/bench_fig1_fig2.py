"""Regenerate paper Figs. 1-2 (architectures and interconnects)."""


def test_fig1_fig2(report):
    result = report("fig1_fig2", fast=False)
    assert result.data["amd_numa"]["distance_classes"] == [0, 1, 2]
    assert all("OK" in n for n in result.notes if "->" in n)
