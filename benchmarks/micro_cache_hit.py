#!/usr/bin/env python
"""Micro-benchmark: the flow-cache hit path's per-hit copy cost.

Every cache hit in :func:`repro.runtime.flow._solve_flow_entry` must
return a defensive copy of the cached :class:`FlowResult` (callers may
hold onto ``controller_utilisation``, and a frozen dataclass shares the
dict otherwise).  The obvious ``dataclasses.replace(result)`` re-runs
``__post_init__`` validation on every hit; the shipped ``_copy_cached``
clones via ``object.__new__`` + ``__dict__`` update instead.  This
script times both against a real solved cell and reports the speedup,
so the claim in docs/PERFORMANCE.md stays reproducible::

    PYTHONPATH=src python benchmarks/micro_cache_hit.py
"""

from __future__ import annotations

import dataclasses
import time

from repro.machine import all_machines
from repro.machine.allocation import CoreAllocation
from repro.runtime.calibration import calibrate_profile
from repro.runtime.flow import _copy_cached, solve_flow

REPEATS = 5
ITERATIONS = 20_000


def _time(fn, result) -> float:
    """Best-of-``REPEATS`` seconds for ``ITERATIONS`` copies."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(ITERATIONS):
            out = fn(result)
        best = min(best, time.perf_counter() - start)
        assert out.controller_utilisation == result.controller_utilisation
        assert out.controller_utilisation is not result.controller_utilisation
    return best


def _replace_copy(result):
    out = dataclasses.replace(result)
    object.__setattr__(out, "controller_utilisation",
                       dict(result.controller_utilisation))
    return out


def main() -> int:
    machine = all_machines()[0]
    profile = calibrate_profile("CG", "C", machine)
    alloc = CoreAllocation.paper_policy(machine, machine.n_cores)
    result = solve_flow(profile, machine, alloc)

    replace_s = _time(_replace_copy, result)
    fast_s = _time(_copy_cached, result)
    per_hit_replace = replace_s / ITERATIONS
    per_hit_fast = fast_s / ITERATIONS
    print(f"dataclasses.replace copy: {per_hit_replace * 1e6:8.3f} us/hit")
    print(f"_copy_cached copy:        {per_hit_fast * 1e6:8.3f} us/hit")
    print(f"speedup: {per_hit_replace / per_hit_fast:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
