"""Regenerate paper Fig. 4: burstiness CCDFs for CG and x264."""


def test_fig4(report):
    result = report("fig4", fast=False)
    agreements = [d["heavy_measured"] == d["heavy_paper"]
                  for d in result.data.values()]
    assert sum(agreements) >= 8  # 9 series; allow one borderline verdict
