"""Regenerate paper Fig. 3: CG.C counter curves on the three machines."""


def test_fig3(report):
    result = report("fig3", fast=False)
    for mkey, series in result.data.items():
        totals = [p["total"] for p in series]
        works = [p["work"] for p in series]
        assert totals[-1] > 1.5 * totals[0], mkey
        assert max(works) / min(works) < 1.3, mkey
