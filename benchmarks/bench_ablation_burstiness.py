"""Regenerate the Section III-B burstiness-vs-size ablation."""


def test_ablation_burstiness(report):
    result = report("ablation_burstiness", fast=False)
    for program in ("CG", "FT", "SP", "IS"):
        assert result.data[f"{program}.S"] is True, program
        assert result.data[f"{program}.C"] is False, program
