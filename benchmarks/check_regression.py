#!/usr/bin/env python
"""Benchmark regression gate: fresh BENCH records vs committed baselines.

Compares the perf records produced by a fresh benchmark run against the
baselines committed under ``benchmarks/perf/`` and fails (exit 1) when
the run regressed:

* **Gated counters** — deterministic work counters (names ending in
  ``.calls``, ``.solves``, ``.iterations`` or ``.events_processed``,
  excluding the ``perf.cache.*`` bookkeeping) must not grow by more than
  the threshold (default 25%).  These are machine-independent, so they
  gate unconditionally.
* **Wall time** — gated with the same threshold, but *only* when the
  fresh record and the baseline carry the same ``environment.hostname``;
  cross-machine wall times are reported as warnings instead of failures.
* **Per-cell solve latency** — the ``latency.*`` p99 percentiles (flow
  solves, MVA solves/batches) are gated like wall time: same-host
  only.  The histograms behind them bucket at powers of two, so a p99
  sitting on a bucket boundary jitters by exactly 2x run to run;
  the gate therefore fails only past ``max(threshold, one bucket)``
  of growth and downgrades within-one-bucket drift to a warning.
  Baselines written before the ``latency`` block existed produce a
  warning, never a failure.
* **Improvement lock** — when a same-host wall time or latency p99
  *improves* by more than the threshold, the gate passes but prints a
  ``re-baseline recommended`` notice: a stale, slower baseline leaves
  that much headroom for future regressions to hide in, so the record
  should be refreshed to lock the win in.

Usage::

    # Generate a fresh fast-mode table2 record and gate it (what CI runs):
    PYTHONPATH=src python benchmarks/check_regression.py --run table2 --fast

    # Gate pre-generated records in a directory against the baselines:
    PYTHONPATH=src python benchmarks/check_regression.py --fresh /tmp/perf

See docs/PERFORMANCE.md for how the baselines are refreshed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import perf_record  # noqa: E402

#: Counter-name suffixes that measure deterministic solver/simulator work.
GATED_SUFFIXES = (".calls", ".solves", ".iterations", ".events_processed")

#: Prefixes excluded from gating (cache bookkeeping varies legitimately).
EXCLUDED_PREFIXES = ("perf.cache.",)

DEFAULT_THRESHOLD = 0.25


def load_record(path: str) -> dict:
    """Read one BENCH json record."""
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def gated_counters(record: dict) -> dict[str, float]:
    """The work counters a record is judged on: ``{name: value}``.

    Tolerates records written by older perf_record versions: the
    ``metrics`` block may be a schema-wrapped snapshot
    (``{"snapshot_schema": N, "instruments": {...}}``, the current
    form), a bare instrument dict (pre-wrapping), and metric summaries
    may be plain numbers instead of ``{"kind": ..., "value": ...}``
    dicts (pre-environment-block schema); malformed entries are skipped
    rather than raising.
    """
    metrics = record.get("metrics") or {}
    if isinstance(metrics, dict) and "snapshot_schema" in metrics:
        metrics = metrics.get("instruments") or {}
    out: dict[str, float] = {}
    for key, summary in metrics.items():
        if isinstance(summary, dict):
            if summary.get("kind") != "counter":
                continue
            value = summary.get("value", 0.0)
        else:
            # Old-schema record: a bare number is a counter sample.
            value = summary
        if not key.endswith(GATED_SUFFIXES):
            continue
        if key.startswith(EXCLUDED_PREFIXES):
            continue
        try:
            out[key] = float(value)
        except (TypeError, ValueError):
            continue
    return out


def latency_p99s(record: dict) -> dict[str, float]:
    """The ``{series: p99_seconds}`` a record's latency SLOs are judged on.

    Prefers the dedicated ``latency`` block (current records); falls
    back to deriving from ``latency.*`` instrument summaries in the
    ``metrics`` block, so records written between the latency
    instruments and the block landing still gate.  Records with
    neither — legacy baselines — return empty, which downgrades the
    latency gate to a warning.
    """
    block = record.get("latency")
    out: dict[str, float] = {}
    if isinstance(block, dict):
        for key, summary in block.items():
            if not isinstance(summary, dict):
                continue
            try:
                out[key] = float(summary["p99"])
            except (KeyError, TypeError, ValueError):
                continue
        return out
    metrics = record.get("metrics") or {}
    if isinstance(metrics, dict) and "snapshot_schema" in metrics:
        metrics = metrics.get("instruments") or {}
    if not isinstance(metrics, dict):
        return out
    for key, summary in metrics.items():
        if not key.startswith("latency.") or not isinstance(summary, dict):
            continue
        try:
            out[key] = float(summary["p99"])
        except (KeyError, TypeError, ValueError):
            continue
    return out


def _same_host(baseline: dict, fresh: dict) -> bool:
    """True only when both records carry the same non-null hostname.

    Records predating the ``environment`` block (or with it set to
    null) compare as different hosts, so their wall times are warned
    about rather than gated.
    """
    base_env = baseline.get("environment")
    fresh_env = fresh.get("environment")
    if not isinstance(base_env, dict) or not isinstance(fresh_env, dict):
        return False
    base_host = base_env.get("hostname")
    return base_host is not None and base_host == fresh_env.get("hostname")


def compare_records(baseline: dict, fresh: dict,
                    threshold: float = DEFAULT_THRESHOLD,
                    ) -> tuple[list[str], list[str]]:
    """Judge one fresh record against its baseline.

    Returns ``(failures, warnings)`` — human-readable lines; an empty
    failure list means the record passes the gate.
    """
    failures: list[str] = []
    warnings: list[str] = []
    name = fresh.get("benchmark", "?")
    limit = 1.0 + threshold

    base_counters = gated_counters(baseline)
    fresh_counters = gated_counters(fresh)
    for key, base_value in sorted(base_counters.items()):
        if key not in fresh_counters:
            warnings.append(
                f"{name}: counter {key} missing from fresh record "
                f"(baseline {base_value:g})")
            continue
        fresh_value = fresh_counters[key]
        if base_value <= 0.0:
            if fresh_value > 0.0:
                warnings.append(
                    f"{name}: counter {key} appeared "
                    f"(0 -> {fresh_value:g}); baseline has no budget")
            continue
        ratio = fresh_value / base_value
        if ratio > limit:
            failures.append(
                f"{name}: counter {key} regressed "
                f"{base_value:g} -> {fresh_value:g} "
                f"({ratio:.2f}x > {limit:.2f}x allowed)")
    for key in sorted(set(fresh_counters) - set(base_counters)):
        warnings.append(
            f"{name}: new gated counter {key} = {fresh_counters[key]:g} "
            "(no baseline; commit a refreshed record to start gating it)")

    lock = 1.0 - threshold
    base_wall = baseline.get("wall_time_s")
    fresh_wall = fresh.get("wall_time_s")
    same_host = _same_host(baseline, fresh)
    if base_wall and fresh_wall:
        ratio = fresh_wall / base_wall
        line = (f"{name}: wall time {base_wall:.3f}s -> {fresh_wall:.3f}s "
                f"({ratio:.2f}x)")
        if not same_host:
            warnings.append(line + " [different host: not gated]")
        elif ratio > limit:
            failures.append(line + f" > {limit:.2f}x allowed")
        elif ratio < lock:
            warnings.append(
                line + " improved past the threshold; re-baseline "
                "recommended to lock the win in")

    base_lat = latency_p99s(baseline)
    fresh_lat = latency_p99s(fresh)
    if not base_lat and fresh_lat:
        warnings.append(
            f"{name}: baseline predates latency percentiles; commit a "
            "refreshed record to start gating p99")
    for key, base_p99 in sorted(base_lat.items()):
        fresh_p99 = fresh_lat.get(key)
        if fresh_p99 is None:
            warnings.append(
                f"{name}: latency series {key} missing from fresh record "
                f"(baseline p99 {base_p99:.4g}s)")
            continue
        if base_p99 <= 0.0:
            continue
        ratio = fresh_p99 / base_p99
        line = (f"{name}: {key} p99 {base_p99:.4g}s -> {fresh_p99:.4g}s "
                f"({ratio:.2f}x)")
        # One power-of-two histogram bucket of p99 drift is measurement
        # resolution, not a regression; only fail beyond it.
        lat_limit = max(limit, 2.0)
        if not same_host:
            warnings.append(line + " [different host: not gated]")
        elif ratio > lat_limit:
            failures.append(line + f" > {lat_limit:.2f}x allowed")
        elif ratio > limit:
            warnings.append(
                line + " within one histogram bucket of baseline; "
                "not gated")
        elif ratio < lock:
            warnings.append(
                line + " improved past the threshold; re-baseline "
                "recommended to lock the win in")
    return failures, warnings


def run_gate(baseline_dir: str, fresh_dir: str,
             threshold: float = DEFAULT_THRESHOLD) -> int:
    """Gate every fresh record that has a committed baseline; exit code."""
    fresh_names = sorted(f for f in os.listdir(fresh_dir)
                         if f.startswith("BENCH_") and f.endswith(".json"))
    if not fresh_names:
        print(f"error: no BENCH_*.json records in {fresh_dir}",
              file=sys.stderr)
        return 2
    all_failures: list[str] = []
    compared = 0
    for fname in fresh_names:
        base_path = os.path.join(baseline_dir, fname)
        if not os.path.exists(base_path):
            print(f"skip: {fname} has no committed baseline in "
                  f"{baseline_dir}")
            continue
        compared += 1
        failures, warnings = compare_records(
            load_record(base_path), load_record(os.path.join(fresh_dir,
                                                             fname)),
            threshold)
        for line in warnings:
            print(f"warn: {line}")
        for line in failures:
            print(f"FAIL: {line}")
        if not failures:
            print(f"ok:   {fname}")
        all_failures.extend(failures)
    if not compared:
        print("error: no fresh record matched a committed baseline",
              file=sys.stderr)
        return 2
    if all_failures:
        print(f"\nregression gate FAILED: {len(all_failures)} regression(s) "
              f"over the {threshold:.0%} threshold")
        return 1
    print(f"\nregression gate passed ({compared} record(s) compared)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="gate fresh BENCH records against committed baselines")
    parser.add_argument("--baseline", default=perf_record.DEFAULT_PERF_DIR,
                        metavar="DIR",
                        help="committed baseline directory "
                             "(default: benchmarks/perf)")
    parser.add_argument("--fresh", default=None, metavar="DIR",
                        help="directory of freshly generated records to gate")
    parser.add_argument("--run", action="append", default=None,
                        metavar="NAME",
                        help="generate a fresh record for this experiment "
                             "first (repeatable)")
    parser.add_argument("--fast", action="store_true",
                        help="with --run: use the fast-mode sweep "
                             "(gates against BENCH_<name>_fast.json)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        metavar="FRAC",
                        help="allowed fractional growth (default 0.25)")
    args = parser.parse_args(argv)

    if not args.run and not args.fresh:
        parser.error("need --run NAME and/or --fresh DIR")
    fresh_dir = args.fresh
    tmp = None
    if args.run:
        if fresh_dir is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-bench-")
            fresh_dir = tmp.name
        for name in args.run:
            path = perf_record.generate_record(name, fast=args.fast,
                                               out_dir=fresh_dir)
            print(f"generated {path}")
    try:
        return run_gate(args.baseline, fresh_dir, args.threshold)
    finally:
        if tmp is not None:
            tmp.cleanup()


if __name__ == "__main__":
    sys.exit(main())
