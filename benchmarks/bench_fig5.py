"""Regenerate paper Fig. 5: model vs measurement, CG.C (high contention)."""


def test_fig5(report):
    result = report("fig5", fast=False)
    for mkey, d in result.data.items():
        # Paper band: 5-14% average relative error (slack for our
        # simulated substrate).
        assert d["mean_relative_error"] < 0.16, mkey
