#!/usr/bin/env python
"""Load generator for ``repro serve``: latency/throughput BENCH records.

Boots a :class:`repro.serve.PredictionServer` in-process (the service's
"single process sustains the load" claim is exactly what this measures),
fires a named workload mix at it over real keep-alive HTTP connections,
and writes a ``BENCH_serve_<mix>.json`` perf record with client-observed
p50/p95/p99 request latency, throughput, and the server's final metrics
snapshot — gated by ``benchmarks/check_regression.py`` like every other
BENCH record (same-host p99/wall gating, counter budgets).

Workload mixes (``--mix``, see docs/SERVING.md):

* ``read-heavy``  — 95% ``/predict`` over a small hot cell set, 5%
  ``/recommend``: the steady-state "scheduler polling the service" shape;
* ``sweep-heavy`` — 60% ``/recommend`` allocation sweeps, 40%
  ``/predict``: placement-search traffic, heavier per request;
* ``mixed``       — 80% ``/predict``, 15% ``/recommend``, 5%
  ``/healthz``: the default gate profile.  With a warm cache a single
  process must sustain >= 1,000 predictions/s (``--min-predict-rate``).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py --mix mixed
    PYTHONPATH=src python benchmarks/bench_serve.py --mix mixed \
        --duration 5 --min-predict-rate 1000

The request schedule is a fixed round-robin expansion of the mix
weights — no RNG — so two runs of the same mix issue the identical
request sequence and their work counters diff cleanly.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import perf_record  # noqa: E402

from repro import obs  # noqa: E402
from repro.obs import names  # noqa: E402
from repro.obs.window import WINDOW_SCHEMA  # noqa: E402
from repro.serve import PredictionServer  # noqa: E402

#: One request template: (method, path, body-or-None).
_PREDICT_HOT = [
    ("POST", "/predict", {"machine": "intel_uma", "program": p,
                          "size": "C", "n_active": n})
    for p in ("CG", "FT", "EP") for n in (2, 4, 8)
]
_PREDICT_BROAD = _PREDICT_HOT + [
    ("POST", "/predict", {"machine": m, "program": p, "size": s,
                          "n_active": n})
    for m, n in (("intel_numa", 12), ("intel_numa", 24), ("amd_numa", 24))
    for p in ("IS", "SP") for s in ("B", "C")
]
_RECOMMEND = [
    ("POST", "/recommend", {"machine": "intel_uma", "program": p,
                            "size": "C", "core_counts": [1, 2, 4, 8]})
    for p in ("CG", "FT")
]
_HEALTH = [("GET", "/healthz", None)]

#: Named mixes: a list of (weight, template-pool) pairs.  The schedule
#: interleaves pools proportionally to the weights, deterministically.
MIXES = {
    "read-heavy": [(19, _PREDICT_HOT), (1, _RECOMMEND)],
    "sweep-heavy": [(3, _RECOMMEND), (2, _PREDICT_BROAD)],
    "mixed": [(16, _PREDICT_BROAD), (3, _RECOMMEND), (1, _HEALTH)],
}


def build_schedule(mix: str, length: int = 240) -> list[tuple]:
    """The deterministic request sequence one connection cycles through.

    Weights are expanded by largest-remainder interleaving: pool i
    contributes ``weight_i / total`` of the slots, spread evenly, and
    each pool is consumed round-robin — no randomness anywhere.
    """
    pools = MIXES[mix]
    total = sum(w for w, _ in pools)
    cursors = [0] * len(pools)
    credit = [0.0] * len(pools)
    schedule: list[tuple] = []
    for _ in range(length):
        for i, (weight, _) in enumerate(pools):
            credit[i] += weight / total
        i = max(range(len(pools)), key=lambda j: credit[j])
        credit[i] -= 1.0
        weight, pool = pools[i]
        schedule.append(pool[cursors[i] % len(pool)])
        cursors[i] += 1
    return schedule


async def _request(reader, writer, method: str, path: str, body) -> int:
    raw = b"" if body is None else json.dumps(body).encode("utf-8")
    head = (f"{method} {path} HTTP/1.1\r\nHost: bench\r\n"
            f"Content-Length: {len(raw)}\r\n\r\n")
    writer.write(head.encode("latin-1") + raw)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split(b" ", 2)[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    if length:
        await reader.readexactly(length)
    return status


async def _connection_worker(host: str, port: int, schedule: list[tuple],
                             offset: int, deadline: float,
                             samples: list[float],
                             statuses: dict[int, int],
                             predictions: list[int]) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        i = offset
        while time.perf_counter() < deadline:
            method, path, body = schedule[i % len(schedule)]
            i += 1
            t0 = time.perf_counter()
            status = await _request(reader, writer, method, path, body)
            samples.append(time.perf_counter() - t0)
            statuses[status] = statuses.get(status, 0) + 1
            if path == "/predict" and status == 200:
                predictions[0] += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def _fetch_json(host: str, port: int, path: str) -> dict:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: bench\r\n"
                 "Connection: close\r\n\r\n".encode("latin-1"))
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    return json.loads(data.split(b"\r\n\r\n", 1)[1])


def percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not sorted_samples:
        return 0.0
    idx = min(len(sorted_samples) - 1,
              int(round(q * (len(sorted_samples) - 1))))
    return sorted_samples[idx]


async def run_load(mix: str, duration_s: float, connections: int,
                   workers: int) -> dict:
    """Run one mix against a fresh in-process server; return raw results."""
    schedule = build_schedule(mix)
    samples: list[float] = []
    statuses: dict[int, int] = {}
    predictions = [0]
    async with PredictionServer(port=0, workers=workers) as server:
        # Warm-up: every distinct cell in the schedule once, so the
        # measured window runs against a warm solver cache.
        reader, writer = await asyncio.open_connection(server.host,
                                                       server.port)
        t0 = time.perf_counter()
        seen = set()
        for method, path, body in schedule:
            key = json.dumps(body, sort_keys=True) if body else path
            if key in seen:
                continue
            seen.add(key)
            await _request(reader, writer, method, path, body)
        writer.close()
        await writer.wait_closed()
        warmup_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        deadline = t0 + duration_s
        await asyncio.gather(*(
            _connection_worker(server.host, server.port, schedule,
                               k * 7, deadline, samples, statuses,
                               predictions)
            for k in range(connections)))
        load_s = time.perf_counter() - t0
        metrics = await _fetch_json(server.host, server.port, "/metrics")
        health = await _fetch_json(server.host, server.port, "/healthz")
    return {
        "mix": mix,
        "samples": sorted(samples),
        "statuses": statuses,
        "predictions": predictions[0],
        "warmup_s": warmup_s,
        "load_s": load_s,
        "metrics": metrics,
        "health": health,
    }


def windowed_latency(metrics: dict) -> dict:
    """The server's fast-window latency summary, or fail fast.

    Tolerant reader with teeth: a server that predates the
    rolling-window schema simply omits the ``windows`` block from
    ``/metrics`` — that is not a benchmarkable configuration any more
    (the windowed p99 is a gated series), so bail with an actionable
    message instead of writing a record that silently drops the key.
    """
    windows = metrics.get("windows")
    if not isinstance(windows, dict):
        raise SystemExit(
            "bench_serve: /metrics carries no 'windows' block -- the "
            "server under test predates the rolling-window schema "
            f"(expected window_schema {WINDOW_SCHEMA}).  Upgrade the "
            "server, or check out the matching bench_serve revision.")
    schema = windows.get("window_schema")
    if schema != WINDOW_SCHEMA:
        raise SystemExit(
            f"bench_serve: server reports window_schema {schema!r}, "
            f"this bench speaks {WINDOW_SCHEMA}; refusing to guess at "
            "the windowed-latency layout.")
    return windows["fast"][names.WINDOW_LATENCY_SECONDS]


def build_record(results: dict) -> dict:
    """A BENCH record in the shared perf_record schema."""
    samples = results["samples"]
    total = len(samples)
    ok = sum(n for status, n in results["statuses"].items()
             if 200 <= status < 300)
    load_s = results["load_s"]
    windowed = windowed_latency(results["metrics"])
    slo = results["health"].get("slo") or {}
    client_p99 = percentile(samples, 0.99)
    window_p99 = windowed.get("p99") or 0.0
    divergence = ((window_p99 - client_p99) / client_p99
                  if client_p99 > 0 else 0.0)
    return {
        "benchmark": f"serve_{results['mix']}",
        "fast": False,
        "schema": obs.MANIFEST_SCHEMA,
        "version": perf_record.normalize_version(obs.code_version()),
        "environment": perf_record.environment(),
        "recorded_unix": time.time(),
        "wall_time_s": load_s,
        "phase_timings": {"warmup": results["warmup_s"],
                          "load": load_s},
        "latency": {
            "serve.request_seconds": {
                "count": total,
                "p50": percentile(samples, 0.50),
                "p95": percentile(samples, 0.95),
                "p99": client_p99,
            },
            # Server-side, from the 60x1s rolling window: covers only
            # the measured load (the window is longer than the default
            # run), binned at powers of two -- expect it to sit on a
            # bucket boundary near the client-observed p99.
            "serve.request_seconds.windowed": {
                "count": windowed.get("count", 0),
                "p50": windowed.get("p50") or 0.0,
                "p95": windowed.get("p95") or 0.0,
                "p99": window_p99,
            },
        },
        "metrics": results["metrics"],
        "slo": slo,
        "notes": [
            f"requests={total}",
            f"ok_2xx={ok}",
            f"throughput_rps={total / load_s:.1f}",
            f"predictions_per_s={results['predictions'] / load_s:.1f}",
            f"windowed_p99_s={window_p99:.6f}",
            f"client_p99_s={client_p99:.6f}",
            f"windowed_vs_client_p99_divergence={divergence:+.1%}",
            f"slo_status={slo.get('status', 'unknown')}",
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="load-test repro serve and write a BENCH record")
    parser.add_argument("--mix", default="mixed", choices=sorted(MIXES),
                        help="workload mix profile (default: mixed)")
    parser.add_argument("--duration", type=float, default=5.0,
                        metavar="SEC", help="measured load window "
                        "(default 5s; warm-up excluded)")
    parser.add_argument("--connections", type=int, default=4, metavar="N",
                        help="concurrent keep-alive connections "
                        "(default 4)")
    parser.add_argument("--workers", type=int, default=4, metavar="N",
                        help="server solver worker threads (default 4)")
    parser.add_argument("--out-dir", default=None, metavar="DIR",
                        help="record output directory (default: "
                        "benchmarks/perf, or $REPRO_BENCH_DIR)")
    parser.add_argument("--min-predict-rate", type=float, default=0.0,
                        metavar="RPS",
                        help="fail unless /predict throughput reaches "
                        "RPS (0 disables; the shipped claim is 1000)")
    parser.add_argument("--require-2xx", action="store_true",
                        help="fail unless every response was 2xx")
    args = parser.parse_args(argv)

    was_enabled = obs.enabled()
    obs.enable(fresh=True)
    perf_record.reset_solver_caches()
    try:
        results = asyncio.run(
            run_load(args.mix, args.duration, args.connections,
                     args.workers))
    finally:
        if not was_enabled:
            obs.disable()

    record = build_record(results)
    total = len(results["samples"])
    ok = sum(n for status, n in results["statuses"].items()
             if 200 <= status < 300)
    lat = record["latency"]["serve.request_seconds"]
    pred_rate = results["predictions"] / results["load_s"]
    print(f"mix={args.mix} connections={args.connections} "
          f"duration={results['load_s']:.2f}s")
    print(f"  requests:    {total} ({ok} 2xx, "
          f"{total / results['load_s']:.0f} req/s)")
    print(f"  predictions: {results['predictions']} "
          f"({pred_rate:.0f} predictions/s)")
    print(f"  latency:     p50={lat['p50'] * 1e3:.3f}ms "
          f"p95={lat['p95'] * 1e3:.3f}ms p99={lat['p99'] * 1e3:.3f}ms")
    win = record["latency"]["serve.request_seconds.windowed"]
    print(f"  windowed:    p99={win['p99'] * 1e3:.3f}ms "
          f"(server 60s window, {win['count']} requests) "
          f"slo={record['slo'].get('status', 'unknown')}")

    out_dir = args.out_dir or perf_record.perf_dir()
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(
            out_dir, perf_record.record_filename(f"serve_{args.mix}"))
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"  record:      {path}")

    failed = False
    if args.require_2xx and ok != total:
        print(f"FAIL: {total - ok} non-2xx response(s)")
        failed = True
    if args.min_predict_rate and pred_rate < args.min_predict_rate:
        print(f"FAIL: {pred_rate:.0f} predictions/s is below the "
              f"{args.min_predict_rate:.0f}/s floor")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
