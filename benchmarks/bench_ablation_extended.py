"""Regenerate the Section VI channel-aware extension ablation."""


def test_ablation_extended(report):
    result = report("ablation_extended", fast=False)
    for mkey, d in result.data.items():
        assert d["base"] < 0.25, mkey        # base model stays sane
        assert d["extended"] < 0.40, mkey    # extension stays bounded
