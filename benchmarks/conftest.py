"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one table or figure of the paper:
``pytest benchmarks/ --benchmark-only`` times the regeneration and prints
the paper-vs-measured rows, so the whole evaluation section can be
eyeballed from one run.
"""

import pytest


def run_and_report(benchmark, name, fast=True, rounds=1):
    """Benchmark one experiment and print its report once."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        run_experiment, args=(name,), kwargs={"fast": fast},
        rounds=rounds, iterations=1)
    print()
    print(result.render())
    return result


@pytest.fixture
def report(benchmark):
    """Fixture-style access to :func:`run_and_report`."""
    def _run(name, fast=True, rounds=1):
        return run_and_report(benchmark, name, fast=fast, rounds=rounds)

    return _run
