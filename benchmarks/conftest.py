"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one table or figure of the paper:
``pytest benchmarks/ --benchmark-only`` times the regeneration and prints
the paper-vs-measured rows, so the whole evaluation section can be
eyeballed from one run.

Every benchmarked experiment additionally writes a ``BENCH_<name>.json``
perf record — wall time plus the telemetry metrics snapshot (solver
calls, events processed, ...) and an ``environment`` block (hostname,
CPU count, Python version) — so the repo's performance trajectory is
machine-diffable across PRs; ``benchmarks/check_regression.py`` gates
fresh records against these baselines.  Records land in
``benchmarks/perf/`` by default; set ``REPRO_BENCH_DIR`` to redirect,
or set it empty to skip.  Record-writing lives in
``benchmarks/perf_record.py``.
"""

import time

import pytest

from perf_record import reset_solver_caches, write_perf_record
from repro import obs


def run_and_report(benchmark, name, fast=True, rounds=1):
    """Benchmark one experiment cold, print its report, emit a perf record."""
    from repro.experiments import run_experiment

    was_enabled = obs.enabled()
    tel = obs.enable(fresh=True)
    reset_solver_caches()
    t0 = time.perf_counter()
    try:
        result = benchmark.pedantic(
            run_experiment, args=(name,), kwargs={"fast": fast},
            rounds=rounds, iterations=1)
        wall = time.perf_counter() - t0
        path = write_perf_record(name, result, wall, tel, fast=fast)
    finally:
        if not was_enabled:
            obs.disable()
    print()
    print(result.render())
    if path:
        print(f"perf record: {path}")
    return result


@pytest.fixture
def report(benchmark):
    """Fixture-style access to :func:`run_and_report`."""
    def _run(name, fast=True, rounds=1):
        return run_and_report(benchmark, name, fast=fast, rounds=rounds)

    return _run
