"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one table or figure of the paper:
``pytest benchmarks/ --benchmark-only`` times the regeneration and prints
the paper-vs-measured rows, so the whole evaluation section can be
eyeballed from one run.

Every benchmarked experiment additionally writes a ``BENCH_<name>.json``
perf record — wall time plus the telemetry metrics snapshot (solver
calls, events processed, ...) — so the repo's performance trajectory is
machine-diffable across PRs.  Records land in ``benchmarks/perf/`` by
default; set ``REPRO_BENCH_DIR`` to redirect, or set it empty to skip.
"""

import json
import os
import time

import pytest

from repro import obs

#: Default output directory for perf records, relative to this file.
_DEFAULT_PERF_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                 "perf")


def _perf_dir() -> str | None:
    configured = os.environ.get("REPRO_BENCH_DIR")
    if configured is not None:
        return configured or None  # empty string disables records
    return _DEFAULT_PERF_DIR


def write_perf_record(name: str, result, wall_time_s: float,
                      tel) -> str | None:
    """Write ``BENCH_<name>.json`` for one benchmarked experiment run."""
    out_dir = _perf_dir()
    if out_dir is None:
        return None
    os.makedirs(out_dir, exist_ok=True)
    record = {
        "benchmark": name,
        "schema": obs.MANIFEST_SCHEMA,
        "version": obs.code_version(),
        "recorded_unix": time.time(),
        "wall_time_s": wall_time_s,
        "phase_timings": dict(result.phase_timings),
        "metrics": tel.metrics.snapshot(),
        "notes": list(result.notes),
    }
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def run_and_report(benchmark, name, fast=True, rounds=1):
    """Benchmark one experiment, print its report, emit a perf record."""
    from repro.experiments import run_experiment

    was_enabled = obs.enabled()
    tel = obs.enable(fresh=True)
    t0 = time.perf_counter()
    try:
        result = benchmark.pedantic(
            run_experiment, args=(name,), kwargs={"fast": fast},
            rounds=rounds, iterations=1)
        wall = time.perf_counter() - t0
        path = write_perf_record(name, result, wall, tel)
    finally:
        if not was_enabled:
            obs.disable()
    print()
    print(result.render())
    if path:
        print(f"perf record: {path}")
    return result


@pytest.fixture
def report(benchmark):
    """Fixture-style access to :func:`run_and_report`."""
    def _run(name, fast=True, rounds=1):
        return run_and_report(benchmark, name, fast=fast, rounds=rounds)

    return _run
