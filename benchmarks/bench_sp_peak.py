"""Regenerate the Section V SP.C peak-contention quotes."""


def test_sp_peak(report):
    result = report("sp_peak", fast=False)
    for mkey, d in result.data.items():
        assert d["winner"] == "SP", mkey
    # Abstract: more than tenfold cycle growth on the 24-core machine.
    assert result.data["intel_numa"]["omegas"]["SP"] > 9.0
